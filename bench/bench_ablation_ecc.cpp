// Ablation A4: ECC design space at mask level.
//
// A4a-A4c sweep the legacy SEC-DED organization (word size x interleave):
// the fraction of stuck-at faults hidden from computation ("correction
// rate") under random cell defects and under burst defects (a damaged row
// segment), plus the parity-cell overhead each organization pays. They
// demonstrate the design rule that interleaving, not shorter words, is what
// rescues spatially correlated defects.
//
// A4d is the codec Pareto table: every registered codec expression
// (FLIM_BENCH_ECC_CODECS, ';'-separated) against the swept fault rates --
// correction rate bought vs parity/column/cycle overhead paid. The --quick
// JSON snapshot of this table is committed as BENCH_ecc_pareto.json so the
// Pareto trajectory is tracked per PR.
//
//   --quick       tiny sizes for CI smoke runs
//   --json PATH   machine-readable JSON of the Pareto table (default
//                 $FLIM_BENCH_JSON or BENCH_ecc_pareto.json)
//   FLIM_BENCH_FAULT_EXPR   fault expression with '@' as the swept-rate
//                 placeholder (default stuck-at via the mask generator)
//   FLIM_BENCH_ECC_CODECS   ';'-separated codec expressions for A4d
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "core/campaign.hpp"
#include "core/rng.hpp"
#include "fault/fault_generator.hpp"
#include "fault/fault_registry.hpp"
#include "fault/residual.hpp"
#include "reliability/ecc.hpp"
#include "reliability/ecc/registry.hpp"

using namespace flim;

namespace {

constexpr std::int64_t kRows = 64;
constexpr std::int64_t kCols = 64;

/// Random defects at `rate`: the composable stack from
/// $FLIM_BENCH_FAULT_EXPR ('@' = rate) when set, stuck-at cells otherwise.
fault::FaultMask random_mask(double rate, std::uint64_t seed) {
  core::Rng rng(seed);
  static const char* expr_env = std::getenv("FLIM_BENCH_FAULT_EXPR");
  if (expr_env != nullptr && *expr_env != '\0') {
    std::string expr;
    for (const char* c = expr_env; *c != '\0'; ++c) {
      if (*c == '@') {
        expr += core::format_double_shortest(rate);
      } else {
        expr += *c;
      }
    }
    const fault::FaultStack stack = fault::parse_fault_expr(expr);
    fault::RealizeContext ctx;
    ctx.grid = {kRows, kCols};
    return stack
        .realize_entry("bench", fault::FaultGranularity::kOutputElement, ctx,
                       rng)
        .combined_mask();
  }
  fault::FaultSpec spec;
  spec.kind = fault::FaultKind::kStuckAt;
  spec.injection_rate = rate;
  fault::FaultGenerator gen({kRows, kCols});
  return gen.generate(spec, rng);
}

/// Burst defects: `bursts` damaged 8-cell row segments.
fault::FaultMask burst_mask(int bursts, std::uint64_t seed) {
  core::Rng rng(seed);
  fault::FaultMask mask(kRows, kCols);
  for (int b = 0; b < bursts; ++b) {
    const auto r = static_cast<std::int64_t>(rng.uniform(kRows));
    const auto c0 = static_cast<std::int64_t>(rng.uniform(kCols - 8));
    for (std::int64_t c = c0; c < c0 + 8; ++c) {
      mask.set_sa0(r * kCols + c, true);
    }
  }
  return mask;
}

/// Fraction of faulty bits removed by a scrub pass of `options`.
double correction_rate(const fault::FaultMask& mask,
                       const fault::ResidualOptions& options) {
  fault::ResidualStats stats;
  (void)fault::apply_word_residual(mask, options, &stats);
  if (stats.faulty_bits_before == 0) return 1.0;
  return 1.0 - static_cast<double>(stats.faulty_bits_after) /
                   static_cast<double>(stats.faulty_bits_before);
}

/// The A4d codec list: $FLIM_BENCH_ECC_CODECS (';'-separated expressions)
/// or the built-in default spread.
std::vector<std::string> pareto_codecs() {
  std::string text = "secded;hamming(d=64,k=7);hsiao(d=64);bch(d=64,t=2)";
  if (const char* env = std::getenv("FLIM_BENCH_ECC_CODECS")) {
    if (*env != '\0') text = env;
  }
  std::vector<std::string> out;
  std::string current;
  for (const char c : text) {
    if (c == ';') {
      if (!current.empty()) out.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) out.push_back(current);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = [] {
    if (const char* v = std::getenv("FLIM_BENCH_JSON")) return std::string(v);
    return std::string("BENCH_ecc_pareto.json");
  }();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: bench_ablation_ecc [--quick] [--json PATH]\n";
      return 2;
    }
  }

  const benchx::BenchOptions options = benchx::options_from_env();
  core::CampaignConfig campaign;
  campaign.repetitions = quick ? 3 : options.repetitions;
  campaign.master_seed = options.master_seed;

  const std::vector<fault::ResidualOptions> organizations{
      {32, 1, 1}, {64, 1, 1}, {64, 4, 1}, {64, 8, 1}};
  const std::vector<double> rates =
      quick ? std::vector<double>{0.001, 0.005, 0.02}
            : std::vector<double>{0.0005, 0.001, 0.002, 0.005, 0.01, 0.02};

  core::Table random_table({"stuckat_rate_%", "w32_i1_%", "w64_i1_%",
                            "w64_i4_%", "w64_i8_%"});
  for (const double rate : rates) {
    std::vector<std::string> row{core::format_double(rate * 100.0, 2)};
    for (const auto& org : organizations) {
      const core::Summary s =
          core::run_repeated(campaign, [&](std::uint64_t seed) {
            return correction_rate(random_mask(rate, seed), org);
          });
      row.push_back(core::format_double(s.mean * 100.0, 1));
    }
    random_table.add_row(std::move(row));
  }
  benchx::emit(
      "Ablation A4a: ECC correction rate vs random stuck-at rate "
      "(word x interleave)",
      "ablation_ecc_random", random_table);

  core::Table burst_table({"bursts", "w32_i1_%", "w64_i1_%", "w64_i4_%",
                           "w64_i8_%"});
  for (const int bursts : {1, 2, 4, 8}) {
    std::vector<std::string> row{std::to_string(bursts)};
    for (const auto& org : organizations) {
      const core::Summary s =
          core::run_repeated(campaign, [&](std::uint64_t seed) {
            return correction_rate(burst_mask(bursts, seed), org);
          });
      row.push_back(core::format_double(s.mean * 100.0, 1));
    }
    burst_table.add_row(std::move(row));
  }
  benchx::emit("Ablation A4b: ECC correction rate vs 8-cell burst defects",
               "ablation_ecc_burst", burst_table);

  core::Table overhead({"organization", "parity_overhead_%"});
  for (const auto& org : organizations) {
    reliability::EccScrubStats stats;
    overhead.add(
        "w" + std::to_string(org.word_bits) + "_i" +
            std::to_string(org.interleave),
        core::format_double(
            stats.overhead({org.word_bits, org.interleave}) * 100.0, 1));
  }
  benchx::emit("Ablation A4c: parity overhead per organization",
               "ablation_ecc_overhead", overhead);

  // A4d: the codec Pareto table -- correction rate bought (per fault rate)
  // vs parity/column/cycle overhead paid (per codec geometry). Built from
  // the registry, so a codec added there shows up here with no bench edit.
  const reliability::ecc::CodecRegistry& registry =
      reliability::ecc::CodecRegistry::instance();
  core::Table pareto({"codec", "rate_%", "corrected_%", "parity_overhead_%",
                      "extra_cols", "scrub_ops"});
  for (const std::string& expr : pareto_codecs()) {
    const reliability::ecc::Codec& codec = registry.configure(expr);
    const reliability::ecc::CostModel cost = codec.cost();
    fault::ResidualOptions org;
    org.word_bits = 64;
    org.interleave = 1;
    org.correct_per_word = codec.capability().correct_guarantee;
    for (const double rate : rates) {
      const core::Summary s =
          core::run_repeated(campaign, [&](std::uint64_t seed) {
            return correction_rate(random_mask(rate, seed), org);
          });
      pareto.add(codec.canonical(), core::format_double(rate * 100.0, 2),
                 core::format_double(s.mean * 100.0, 1),
                 core::format_double(cost.parity_overhead() * 100.0, 2),
                 cost.extra_columns(kCols),
                 cost.scrub_cycles(kRows * kCols));
    }
  }
  benchx::emit(
      "Ablation A4d: codec Pareto -- correction rate vs overhead "
      "(w64, i1)",
      "ablation_ecc_pareto", pareto);
  pareto.write_json(json_path);
  std::cout << "[json] " << json_path << "\n";

  std::cout
      << "expected shape: at low random rates every organization corrects "
         "nearly everything (faults are isolated); shorter words help as "
         "rates grow (fewer collisions per word). Bursts expose the design "
         "rule that the interleave degree must cover the burst length: an "
         "8-cell burst defeats interleave 1 and 4 (>= 2 faults per word) "
         "and only interleave 8 isolates every cell. On the Pareto table "
         "bch(t=2) buys the highest correction rate at the highest parity "
         "and cycle cost; the SEC-DED family is the knee.\n";
  return 0;
}

// Microbenchmarks (google-benchmark) for the arithmetic kernels that set the
// FLIM/vanilla/device performance hierarchy of Fig 4f.
#include <benchmark/benchmark.h>

#include "core/rng.hpp"
#include "lim/crossbar.hpp"
#include "lim/logic_family.hpp"
#include "tensor/bit_matrix.hpp"
#include "tensor/gemm.hpp"
#include "tensor/xnor_gemm.hpp"

namespace {

using namespace flim;

tensor::BitMatrix random_bits(std::int64_t rows, std::int64_t cols,
                              std::uint64_t seed) {
  core::Rng rng(seed);
  tensor::BitMatrix m(rows, cols);
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      m.set_bit(r, c, rng.bernoulli(0.5));
    }
  }
  return m;
}

void BM_XnorGemm(benchmark::State& state) {
  const auto n = state.range(0);
  const tensor::BitMatrix a = random_bits(n, 256, 1);
  const tensor::BitMatrix w = random_bits(64, 256, 2);
  tensor::IntTensor out;
  for (auto _ : state) {
    tensor::xnor_gemm(a, w, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * 64 * 256);
}
BENCHMARK(BM_XnorGemm)->Arg(64)->Arg(256)->Arg(1024);

void BM_XnorGemmTermFaults(benchmark::State& state) {
  const auto n = state.range(0);
  const tensor::BitMatrix a = random_bits(n, 256, 3);
  const tensor::BitMatrix w = random_bits(64, 256, 4);
  const tensor::BitMatrix flip = random_bits(64, 256, 5);
  const tensor::BitMatrix none(64, 256);
  tensor::IntTensor out;
  for (auto _ : state) {
    tensor::xnor_gemm_term_faults(a, w, flip, none, none, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * 64 * 256);
}
BENCHMARK(BM_XnorGemmTermFaults)->Arg(64)->Arg(256)->Arg(1024);

void BM_FloatGemm(benchmark::State& state) {
  const auto n = state.range(0);
  core::Rng rng(6);
  tensor::FloatTensor a(tensor::Shape{n, 256});
  tensor::FloatTensor b(tensor::Shape{64, 256});
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    a[i] = static_cast<float>(rng.normal());
  }
  for (std::int64_t i = 0; i < b.numel(); ++i) {
    b[i] = static_cast<float>(rng.normal());
  }
  tensor::FloatTensor c;
  for (auto _ : state) {
    tensor::gemm_bt(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * 64 * 256);
}
BENCHMARK(BM_FloatGemm)->Arg(64)->Arg(256);

void BM_DeviceXnor(benchmark::State& state) {
  lim::CrossbarConfig cfg;
  cfg.rows = 1;
  cfg.cols = lim::kCellsPerGate;
  lim::CrossbarArray xbar(cfg);
  const auto family =
      lim::make_logic_family(state.range(0) == 0 ? lim::LogicFamilyKind::kMagic
                                                 : lim::LogicFamilyKind::kImply);
  bool a = false;
  for (auto _ : state) {
    a = !a;
    benchmark::DoNotOptimize(xbar.execute_xnor(*family, 0, 0, a, !a));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(family->name());
}
BENCHMARK(BM_DeviceXnor)->Arg(0)->Arg(1);

}  // namespace

// Fig 4d: whole faulty columns on a 40x10 crossbar per layer.
#include <iostream>

#include "bench_common.hpp"
#include "core/campaign.hpp"
#include "models/zoo.hpp"

using namespace flim;

int main() {
  const benchx::BenchOptions options = benchx::options_from_env();
  const benchx::LenetFixture fx = benchx::make_lenet_fixture(options);

  std::vector<std::string> series = models::lenet_faultable_layers();
  series.push_back("combined");
  const lim::CrossbarGeometry grid{40, 10};  // the paper's array

  std::vector<std::string> columns{"faulty_columns"};
  for (const auto& s : series) columns.push_back(s + "_acc_%");
  core::Table table(columns);

  core::CampaignConfig campaign;
  campaign.repetitions = options.repetitions;
  campaign.master_seed = options.master_seed;

  for (int cols = 0; cols <= 4; ++cols) {
    std::vector<std::string> row{std::to_string(cols)};
    for (const auto& s : series) {
      const std::vector<std::string> filter =
          s == "combined" ? std::vector<std::string>{}
                          : std::vector<std::string>{s};
      const core::Summary summary =
          core::run_repeated(campaign, [&](std::uint64_t seed) {
            fault::FaultSpec spec;
            spec.kind = fault::FaultKind::kBitFlip;
            spec.faulty_cols = cols;
            return benchx::evaluate_with_faults(fx.model, fx.eval_batch,
                                                fx.layers, filter, spec, seed,
                                                grid);
          });
      row.push_back(benchx::pct(summary.mean));
    }
    table.add_row(std::move(row));
    std::cerr << "[fig4d] " << cols << " faulty columns done\n";
  }

  benchx::emit("Fig 4d: faulty columns on a 40x10 crossbar vs accuracy",
               "fig4d_faulty_columns", table);
  std::cout << "clean accuracy: " << benchx::pct(fx.clean_accuracy) << "%\n";
  std::cout << "expected shape: each column corrupts 1/10 of the mapped ops; "
               "decline is steeper than the per-row decline of Fig 4e and "
               "near-linear for the last dense layer.\n";
  return 0;
}

// Fig 4d: whole faulty columns on a 40x10 crossbar per layer -- one
// faulty-columns x layer scenario on the paper's array geometry.
#include <iostream>

#include "bench_common.hpp"
#include "models/zoo.hpp"

using namespace flim;

int main() {
  const benchx::BenchOptions options = benchx::options_from_env();

  std::vector<std::string> series = models::lenet_faultable_layers();
  series.push_back("combined");
  const std::vector<int> cols{0, 1, 2, 3, 4};

  exp::ScenarioSpec spec;
  spec.name = "fig4d_faulty_columns";
  spec.workload = benchx::lenet_workload_spec(options);
  spec.fault.kind = fault::FaultKind::kBitFlip;
  spec.grid = {40, 10};  // the paper's array
  spec.axes = {exp::faulty_cols_axis(cols), exp::layers_axis(series)};
  spec.repetitions = options.repetitions;
  spec.master_seed = options.master_seed;

  exp::ScenarioRunner runner(spec);
  const exp::Workload fx = benchx::load_bench_workload(spec.workload);
  const exp::ScenarioResult result =
      runner.run(fx, benchx::store_options_from_env(spec.name),
                 [&](const exp::ScenarioPoint& p) {
        if (p.labels[1] == series.back()) {
          std::cerr << "[fig4d] " << p.labels[0] << " faulty columns done\n";
        }
      });

  std::vector<std::string> columns{"faulty_columns"};
  for (const auto& s : series) columns.push_back(s + "_acc_%");
  core::Table table(columns);
  for (std::size_t i = 0; i < cols.size(); ++i) {
    std::vector<std::string> row{std::to_string(cols[i])};
    for (std::size_t j = 0; j < series.size(); ++j) {
      row.push_back(benchx::pct(result.at({i, j}).mean));
    }
    table.add_row(std::move(row));
  }

  benchx::emit("Fig 4d: faulty columns on a 40x10 crossbar vs accuracy",
               "fig4d_faulty_columns", table);
  std::cout << "clean accuracy: " << benchx::pct(fx.clean_accuracy) << "%\n";
  std::cout << "expected shape: each column corrupts 1/10 of the mapped ops; "
               "decline is steeper than the per-row decline of Fig 4e and "
               "near-linear for the last dense layer.\n";
  return 0;
}

// Extension E4: online canary monitoring -- detection latency vs overhead.
//
// Complements the offline March coverage bench: a deployed LIM accelerator
// cannot be taken out of service for a 10N March pass, so a concurrent
// monitor probes a few canary slots between inferences. This bench sweeps
// the canary budget and compares the round-robin and random policies,
// reporting mean detection latency (inferences until a fresh stuck-at
// defect is flagged) and the steady-state canary-op overhead.
#include <iostream>

#include "bench_common.hpp"
#include "core/campaign.hpp"
#include "core/rng.hpp"
#include "fault/fault_generator.hpp"
#include "reliability/monitor.hpp"

using namespace flim;

namespace {

double detection_latency(reliability::CanaryPolicy policy, int slots_per_round,
                         double fault_rate, std::uint64_t seed) {
  const lim::CrossbarGeometry grid{64, 64};
  core::Rng rng(seed);

  fault::FaultSpec spec;
  spec.kind = fault::FaultKind::kStuckAt;
  spec.injection_rate = fault_rate;
  fault::FaultGenerator gen(grid);
  const fault::FaultMask mask = gen.generate(spec, rng);

  reliability::MonitorConfig cfg;
  cfg.grid = grid;
  cfg.test_period = 8;
  cfg.slots_per_round = slots_per_round;
  cfg.policy = policy;
  cfg.seed = seed ^ 0x5bd1e995u;
  const reliability::OnlineMonitor monitor(cfg);

  const auto outcome = monitor.run_until_detection(mask, 1 << 22);
  return static_cast<double>(outcome.inferences_elapsed);
}

}  // namespace

int main() {
  const benchx::BenchOptions options = benchx::options_from_env();

  core::CampaignConfig campaign;
  campaign.repetitions = options.repetitions;
  campaign.master_seed = options.master_seed;

  const double fault_rate = 0.001;  // a handful of fresh defects in 64x64
  core::Table table({"slots_per_round", "overhead_ops_per_inf",
                     "roundrobin_latency_inf", "random_latency_inf"});

  for (const int slots : {2, 4, 8, 16, 32, 64}) {
    reliability::MonitorConfig probe;
    probe.grid = {64, 64};
    probe.test_period = 8;
    probe.slots_per_round = slots;
    const double overhead =
        reliability::OnlineMonitor(probe).overhead_ops_per_inference();

    const core::Summary rr =
        core::run_repeated(campaign, [&](std::uint64_t seed) {
          return detection_latency(reliability::CanaryPolicy::kRoundRobin,
                                   slots, fault_rate, seed);
        });
    const core::Summary rnd =
        core::run_repeated(campaign, [&](std::uint64_t seed) {
          return detection_latency(reliability::CanaryPolicy::kRandom, slots,
                                   fault_rate, seed);
        });
    table.add(slots, core::format_double(overhead, 2),
              core::format_double(rr.mean, 1),
              core::format_double(rnd.mean, 1));
    std::cerr << "[monitor] " << slots << " slots/round done\n";
  }

  benchx::emit(
      "Extension E4: canary monitor detection latency vs overhead "
      "(64x64 grid, 0.1% fresh stuck-ats, period 8)",
      "ext_online_monitor", table);
  std::cout
      << "expected shape: latency falls roughly inversely with the canary "
         "budget; round-robin beats random at equal overhead (bounded "
         "worst case, no slot revisited before a full sweep).\n";
  return 0;
}

// Ablation A3: crossbar geometry -- how array dimensions trade mapping
// passes/latency against fault sensitivity at a fixed injection rate.
#include <iostream>

#include "bench_common.hpp"
#include "core/campaign.hpp"
#include "models/zoo.hpp"
#include "lim/mapper.hpp"

using namespace flim;

int main() {
  const benchx::BenchOptions options = benchx::options_from_env();
  const benchx::LenetFixture fx = benchx::make_lenet_fixture(options);

  const std::vector<lim::CrossbarGeometry> geometries{
      {16, 16}, {32, 32}, {64, 64}, {128, 128}, {40, 10}};
  const double rate = 0.15;

  core::Table table({"geometry", "gates", "conv2_passes", "conv2_latency_us",
                     "acc_at_15%_bitflip_%"});

  core::CampaignConfig campaign;
  campaign.repetitions = options.repetitions;
  campaign.master_seed = options.master_seed;

  // conv2 carries the largest workload; use it for the mapping columns.
  const bnn::LayerWorkload* conv2 = nullptr;
  for (const auto& l : fx.layers) {
    if (l.layer_name == "conv2") conv2 = &l;
  }

  for (const auto& geom : geometries) {
    lim::CrossbarMapper mapper(geom, 1, lim::LogicFamilyKind::kMagic);
    const auto mapping =
        conv2 != nullptr ? mapper.map_ops(conv2->product_terms_per_image())
                         : lim::MappingResult{};

    const core::Summary s =
        core::run_repeated(campaign, [&](std::uint64_t seed) {
          fault::FaultSpec spec;
          spec.kind = fault::FaultKind::kBitFlip;
          spec.injection_rate = rate;
          return benchx::evaluate_with_faults(fx.model, fx.eval_batch,
                                              fx.layers, {}, spec, seed, geom);
        });

    table.add(std::to_string(geom.rows) + "x" + std::to_string(geom.cols),
              mapper.gates_per_crossbar(), mapping.passes,
              core::format_double(mapping.latency_seconds * 1e6, 1),
              benchx::pct(s.mean));
    std::cerr << "[ablation-geometry] " << geom.rows << "x" << geom.cols
              << " done\n";
  }

  benchx::emit(
      "Ablation A3: crossbar geometry vs mapping cost and fault sensitivity",
      "ablation_crossbar_geometry", table);
  std::cout << "clean accuracy: " << benchx::pct(fx.clean_accuracy) << "%\n";
  std::cout << "reading: larger arrays host more parallel gates (fewer "
               "passes, lower latency); accuracy at a fixed RATE is nearly "
               "geometry-independent because the corrupted-op fraction is "
               "what matters -- validating the virtual-grid abstraction.\n";
  return 0;
}

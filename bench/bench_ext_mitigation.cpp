// Extension E2: fault mitigation by N-modular redundancy.
//
// The paper's conclusion: tolerating in-field faults requires fault-tolerant
// approaches. This bench quantifies the classic one -- executing each
// binarized layer on N crossbar replicas with independent defect maps and
// majority-voting the results -- across stuck-at rates.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "bnn/flim_engine.hpp"
#include "bnn/redundancy.hpp"
#include "core/campaign.hpp"
#include "core/rng.hpp"
#include "fault/fault_generator.hpp"
#include "models/zoo.hpp"

using namespace flim;

namespace {

// Builds a vote engine over `n` FLIM replicas with independent masks drawn
// from `seed` at the given stuck-at rate.
std::unique_ptr<bnn::XnorExecutionEngine> make_replicated_engine(
    int n, double rate, std::uint64_t seed,
    const std::vector<bnn::LayerWorkload>& layers) {
  fault::FaultGenerator gen({64, 64});
  core::Rng rng(seed);
  std::vector<std::unique_ptr<bnn::XnorExecutionEngine>> replicas;
  for (int i = 0; i < n; ++i) {
    auto engine = std::make_unique<bnn::FlimEngine>();
    for (const auto& layer : layers) {
      fault::FaultSpec spec;
      spec.kind = fault::FaultKind::kStuckAt;
      spec.injection_rate = rate;
      fault::FaultVectorEntry e;
      e.layer_name = layer.layer_name;
      e.kind = spec.kind;
      e.mask = gen.generate(spec, rng);  // independent defects per replica
      engine->set_layer_fault(std::move(e));
    }
    replicas.push_back(std::move(engine));
  }
  if (n == 1) return std::move(replicas[0]);
  return std::make_unique<bnn::MedianVoteEngine>(std::move(replicas));
}

}  // namespace

int main() {
  const benchx::BenchOptions options = benchx::options_from_env();
  const benchx::LenetFixture fx = benchx::make_lenet_fixture(options);

  const std::vector<double> rates{0.0, 0.05, 0.10, 0.15, 0.20};
  core::Table table({"rate_%", "single_acc_%", "tmr3_acc_%", "nmr5_acc_%"});

  core::CampaignConfig campaign;
  campaign.repetitions = options.repetitions;
  campaign.master_seed = options.master_seed;

  for (const double rate : rates) {
    std::vector<std::string> row{core::format_double(rate * 100.0, 0)};
    for (const int n : {1, 3, 5}) {
      const core::Summary s =
          core::run_repeated(campaign, [&](std::uint64_t seed) {
            const auto engine =
                make_replicated_engine(n, rate, seed, fx.layers);
            return fx.model.evaluate(fx.eval_batch, *engine);
          });
      row.push_back(benchx::pct(s.mean));
    }
    table.add_row(std::move(row));
    std::cerr << "[ext-mitigation] rate " << rate * 100.0 << "% done\n";
  }

  benchx::emit(
      "Extension E2: N-modular redundancy vs stuck-at rate (majority vote)",
      "ext_mitigation", table);
  std::cout << "clean accuracy: " << benchx::pct(fx.clean_accuracy) << "%\n";
  std::cout << "expected shape: voting over replicas with independent defect "
               "maps recovers most of the lost accuracy; 5-way beats 3-way "
               "at high rates, at proportional area/energy cost.\n";
  return 0;
}

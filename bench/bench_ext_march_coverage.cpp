// Extension E3: March-test fault coverage over the device-fault taxonomy.
//
// The paper's conclusion calls for strategies that monitor degradation
// during the lifetime; March tests are the standard offline instrument.
// This bench regenerates the classical coverage table on our memristor
// device model: per algorithm (MATS+, March X, March C-, March RAW1) and
// per device-fault kind, the fraction of randomly placed single faults
// detected -- once for hard faults (severity 1.0) and once for weak,
// accumulation-style faults (severity 0.3) where only the repeated-read
// algorithm catches read disturb.
#include <iostream>

#include "bench_common.hpp"
#include "reliability/march.hpp"

using namespace flim;

namespace {

core::Table coverage_table(double severity, int samples, std::uint64_t seed) {
  std::vector<std::string> columns{"fault_kind"};
  for (const auto& test : reliability::standard_march_tests()) {
    columns.push_back(test.name + "_%");
  }
  core::Table table(columns);

  // Evaluate every algorithm first, then emit one row per fault kind.
  std::vector<std::vector<reliability::CoverageRow>> per_test;
  for (const auto& test : reliability::standard_march_tests()) {
    reliability::CoverageConfig cfg;
    cfg.crossbar.rows = 16;
    cfg.crossbar.cols = 16;
    cfg.samples_per_kind = samples;
    cfg.severity = severity;
    cfg.seed = seed;
    per_test.push_back(reliability::evaluate_coverage(test, cfg));
    std::cerr << "[march] " << test.name << " @ severity " << severity
              << " done\n";
  }

  const auto& kinds = lim::all_device_fault_kinds();
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    std::vector<std::string> row{lim::to_string(kinds[k])};
    for (const auto& rows : per_test) {
      row.push_back(core::format_double(rows[k].coverage() * 100.0, 1));
    }
    table.add_row(std::move(row));
  }
  return table;
}

}  // namespace

int main() {
  const benchx::BenchOptions options = benchx::options_from_env();
  const int samples = std::max(4, options.repetitions);

  benchx::emit(
      "Extension E3a: March fault coverage, hard faults (severity 1.0)",
      "ext_march_coverage_hard",
      coverage_table(1.0, samples, options.master_seed));

  benchx::emit(
      "Extension E3b: March fault coverage, weak faults (severity 0.3)",
      "ext_march_coverage_weak",
      coverage_table(0.3, samples, options.master_seed + 1));

  core::Table cost({"algorithm", "notation", "ops_per_cell"});
  for (const auto& test : reliability::standard_march_tests()) {
    cost.add(test.name, test.notation(), test.ops_per_cell());
  }
  benchx::emit("Extension E3c: March algorithm cost", "ext_march_cost", cost);

  std::cout
      << "expected shape: March C- covers all hard faults; MATS+ misses the "
         "1->0 transition fault (no read after its final write); weak "
         "read-disturb needs March RAW1's repeated in-place reads; "
         "parametric drift escapes every functional test (the gap the "
         "online monitor and lifetime modules address).\n";
  return 0;
}

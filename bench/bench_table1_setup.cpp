// Table I: adopted experimental setup (host and build introspection).
#include <iostream>

#include "bench_common.hpp"
#include "core/sysinfo.hpp"
#include "core/version.hpp"

using namespace flim;

int main() {
  const core::SystemInfo info = core::collect_system_info();
  core::Table table({"category", "component", "value"});
  table.add("Hardware", "CPU", info.cpu_model);
  table.add("Hardware", "Logical cores", info.logical_cores);
  table.add("Hardware", "RAM",
            std::to_string(info.total_ram_bytes / (1024ull * 1024ull)) +
                " MiB");
  table.add("Software", "OS", info.os);
  table.add("Software", "Compiler", info.compiler);
  table.add("Software", "Build type", info.build_type);
  table.add("Software", "FLIM library", info.library_version);
  table.add("Software", "Accelerator",
            std::string("none (thread-pool parallel FLIM substitutes the "
                        "paper's GPU; see DESIGN.md)"));
  benchx::emit("Table I: adopted experimental setup", "table1_setup", table);
  return 0;
}

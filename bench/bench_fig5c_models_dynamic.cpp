// Fig 5c: dynamic-fault resilience across the nine Table-II model families.
#include <iostream>

#include "bench_common.hpp"
#include "core/campaign.hpp"
#include "models/zoo.hpp"

using namespace flim;

int main() {
  benchx::BenchOptions options = benchx::options_from_env();
  options.epochs = std::min(options.epochs, 2);
  options.train_samples = std::min<std::int64_t>(options.train_samples, 2000);
  const benchx::ZooFixture fx = benchx::make_zoo_fixture(options);

  const double rate = 0.15;  // fixed dynamic-mask density
  std::vector<std::string> columns{"model", "clean_acc_%"};
  for (int period = 0; period <= 5; ++period) {
    columns.push_back("period_" + std::to_string(period) + "_acc_%");
  }
  core::Table table(columns);

  core::CampaignConfig campaign;
  campaign.repetitions = options.repetitions;
  campaign.master_seed = options.master_seed;

  for (const auto& name : models::zoo_model_names()) {
    const bnn::Model model = benchx::load_zoo_model(name, fx, options);
    const auto layers =
        model.analyze(tensor::FloatTensor(tensor::Shape{1, 3, 32, 32}, 0.3f))
            .binarized_layers;
    bnn::ReferenceEngine ref;
    const double clean = model.evaluate(fx.eval_batch, ref);

    std::vector<std::string> row{name, benchx::pct(clean)};
    for (int period = 0; period <= 5; ++period) {
      const core::Summary s =
          core::run_repeated(campaign, [&](std::uint64_t seed) {
            fault::FaultSpec spec;
            spec.kind = fault::FaultKind::kDynamic;
            spec.injection_rate = rate;
            spec.dynamic_period = period;
            return benchx::evaluate_with_faults(model, fx.eval_batch, layers,
                                                {}, spec, seed, {64, 64});
          });
      row.push_back(benchx::pct(s.mean));
    }
    table.add_row(std::move(row));
    std::cerr << "[fig5c] " << name << " done\n";
  }

  benchx::emit("Fig 5c: dynamic faults across BNN model families (15% mask)",
               "fig5c_models_dynamic", table);
  std::cout << "expected shape: accuracy recovers toward the clean value as "
               "the sensitization period grows, across all families.\n";
  return 0;
}

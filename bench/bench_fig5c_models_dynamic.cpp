// Fig 5c: dynamic-fault resilience across the nine Table-II model families
// -- one period-axis scenario per family at a fixed 15% mask density.
#include <iostream>

#include "bench_common.hpp"
#include "models/zoo.hpp"

using namespace flim;

int main() {
  benchx::BenchOptions options = benchx::options_from_env();
  options.epochs = std::min(options.epochs, 2);
  options.train_samples = std::min<std::int64_t>(options.train_samples, 2000);

  const std::vector<int> periods{0, 1, 2, 3, 4, 5};
  std::vector<std::string> columns{"model", "clean_acc_%"};
  for (const int period : periods) {
    columns.push_back("period_" + std::to_string(period) + "_acc_%");
  }
  core::Table table(columns);

  for (const auto& name : models::zoo_model_names()) {
    exp::ScenarioSpec spec;
    spec.name = "fig5c_" + name;
    spec.workload = benchx::zoo_workload_spec(name, options);
    spec.fault.kind = fault::FaultKind::kDynamic;
    spec.fault.injection_rate = 0.15;  // fixed dynamic-mask density
    spec.axes = {exp::period_axis(periods)};
    spec.repetitions = options.repetitions;
    spec.master_seed = options.master_seed;

    exp::ScenarioRunner runner(spec);
    const exp::Workload fx = benchx::load_bench_workload(spec.workload);
    const exp::ScenarioResult result =
        runner.run(fx, benchx::store_options_from_env(spec.name));

    std::vector<std::string> row{name, benchx::pct(fx.clean_accuracy)};
    for (std::size_t i = 0; i < periods.size(); ++i) {
      row.push_back(benchx::pct(result.at({i}).mean));
    }
    table.add_row(std::move(row));
    std::cerr << "[fig5c] " << name << " done\n";
  }

  benchx::emit("Fig 5c: dynamic faults across BNN model families (15% mask)",
               "fig5c_models_dynamic", table);
  std::cout << "expected shape: accuracy recovers toward the clean value as "
               "the sensitization period grows, across all families.\n";
  return 0;
}

// Extension E6: column criticality and selective hardening.
//
// Exercises the fine-grained end of FLIM's methodology: on the Fig 4d
// scenario (40x10 virtual crossbar per layer) every virtual column of each
// LeNet layer is faulted in isolation to produce a criticality ranking, and
// the ranking is then used to decide which failed columns a limited spare
// budget repairs -- criticality-guided vs random repair.
#include <iostream>

#include "bench_common.hpp"
#include "reliability/criticality.hpp"

using namespace flim;

int main() {
  const benchx::BenchOptions options = benchx::options_from_env();
  const benchx::LenetFixture fx = benchx::make_lenet_fixture(options);

  reliability::CriticalityConfig cfg;
  cfg.grid = {40, 10};
  cfg.kind = fault::FaultKind::kStuckAt;
  cfg.repetitions = std::max(2, options.repetitions / 2);
  cfg.master_seed = options.master_seed;

  // Per-layer ranking: top and bottom columns by accuracy drop.
  core::Table ranking({"layer", "clean_%", "worst_col", "worst_drop_pp",
                       "median_drop_pp", "best_col", "best_drop_pp"});
  std::vector<reliability::CriticalityReport> reports;
  for (const auto& layer : fx.layers) {
    const reliability::CriticalityReport report = reliability::rank_columns(
        fx.model, fx.eval_batch, layer.layer_name, cfg);
    const auto& cols = report.columns;
    ranking.add(layer.layer_name, benchx::pct(report.clean_accuracy),
                cols.front().column,
                core::format_double(cols.front().drop * 100.0, 1),
                core::format_double(cols[cols.size() / 2].drop * 100.0, 1),
                cols.back().column,
                core::format_double(cols.back().drop * 100.0, 1));
    reports.push_back(report);
    std::cerr << "[criticality] " << layer.layer_name << " ranked\n";
  }
  benchx::emit("Extension E6a: column criticality per layer (40x10 grid, "
               "stuck-at columns)",
               "ext_criticality_ranking", ranking);

  // Selective hardening: 2k columns fail, k spares repair guided vs random.
  const int budget = 2;
  core::Table hardening({"layer", "faulty_acc_%", "random_repair_%",
                         "guided_repair_%"});
  for (std::size_t i = 0; i < fx.layers.size(); ++i) {
    const reliability::HardeningOutcome outcome =
        reliability::evaluate_selective_hardening(
            fx.model, fx.eval_batch, fx.layers[i].layer_name, reports[i],
            budget, cfg);
    hardening.add(fx.layers[i].layer_name,
                  benchx::pct(outcome.faulty_accuracy),
                  benchx::pct(outcome.random_hardening),
                  benchx::pct(outcome.guided_hardening));
    std::cerr << "[criticality] " << fx.layers[i].layer_name
              << " hardening done\n";
  }
  benchx::emit("Extension E6b: selective hardening, 4 columns fail / 2 "
               "spares (guided by ranking vs random)",
               "ext_criticality_hardening", hardening);

  std::cout
      << "expected shape: column drops are far from uniform (deeper layers "
         "and busier columns cost more, cf. Fig 4d); spending the spare "
         "budget on the ranking's most critical columns recovers at least "
         "as much accuracy as random repair, with the gap widest where the "
         "ranking contrast is largest.\n";
  return 0;
}

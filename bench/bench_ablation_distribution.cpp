// Ablation A5: spatial fault distribution -- uniform vs clustered.
//
// The paper places faults uniformly at random; real ReRAM defect maps
// cluster. At identical injection rates this bench compares the accuracy
// impact of uniform and clustered placements on the LeNet workload, at both
// injection granularities. Clustering concentrates damage on neighbouring
// virtual slots -- i.e. on neighbouring output elements / product terms --
// which changes how much of the damage the popcount accumulators average
// away.
#include <iostream>

#include "bench_common.hpp"
#include "core/campaign.hpp"
#include "models/zoo.hpp"

using namespace flim;

int main() {
  const benchx::BenchOptions options = benchx::options_from_env();
  const benchx::LenetFixture fx = benchx::make_lenet_fixture(options);

  core::CampaignConfig campaign;
  campaign.repetitions = options.repetitions;
  campaign.master_seed = options.master_seed;

  core::Table table({"rate_%", "uniform_out_%", "clustered_out_%",
                     "uniform_term_%", "clustered_term_%"});

  for (const double rate : {0.0, 0.05, 0.10, 0.20, 0.30}) {
    std::vector<std::string> row{core::format_double(rate * 100.0, 0)};
    for (const auto granularity : {fault::FaultGranularity::kOutputElement,
                                   fault::FaultGranularity::kProductTerm}) {
      for (const auto distribution : {fault::FaultDistribution::kUniform,
                                      fault::FaultDistribution::kClustered}) {
        const core::Summary s =
            core::run_repeated(campaign, [&](std::uint64_t seed) {
              fault::FaultSpec spec;
              spec.kind = fault::FaultKind::kStuckAt;
              spec.injection_rate = rate;
              spec.granularity = granularity;
              // Placement is meaningless with zero faults (and the spec
              // validator rejects clustered mode at rate 0); the clean
              // point is identical either way.
              spec.distribution =
                  rate == 0.0 ? fault::FaultDistribution::kUniform
                              : distribution;
              spec.cluster_radius = 2.0;
              return benchx::evaluate_with_faults(fx.model, fx.eval_batch,
                                                  fx.layers, {}, spec, seed,
                                                  {64, 64});
            });
        row.push_back(benchx::pct(s.mean));
      }
    }
    table.add_row(std::move(row));
    std::cerr << "[distribution] rate " << rate * 100.0 << "% done\n";
  }

  benchx::emit(
      "Ablation A5: uniform vs clustered fault placement (stuck-at, equal "
      "rates)",
      "ablation_distribution", table);
  std::cout << "clean accuracy: " << benchx::pct(fx.clean_accuracy) << "%\n";
  std::cout
      << "expected shape: equal fault budgets need not hurt equally -- "
         "clustered placement concentrates corruption on a few output "
         "regions, typically sparing more of the network at low rates "
         "(and the paper's uniform assumption is the pessimistic case at "
         "output-element granularity).\n";
  return 0;
}

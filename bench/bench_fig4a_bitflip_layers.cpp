// Fig 4a: impact of bit-flip injection rate on individual LeNet layers.
//
// Sweep: injection rate 0..30%, series conv1/conv2/dense0/dense1/combined,
// each point averaged over re-seeded repetitions (paper: 100). The whole
// figure is one declarative scenario: rate x layer grid on the FLIM backend.
#include <iostream>

#include "bench_common.hpp"
#include "models/zoo.hpp"

using namespace flim;

int main() {
  const benchx::BenchOptions options = benchx::options_from_env();

  std::vector<std::string> series = models::lenet_faultable_layers();
  series.push_back("combined");
  const std::vector<double> rates{0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30};

  exp::ScenarioSpec spec;
  spec.name = "fig4a_bitflip_layers";
  spec.workload = benchx::lenet_workload_spec(options);
  spec.fault.kind = fault::FaultKind::kBitFlip;
  spec.axes = {benchx::rate_or_expr_axis(rates), exp::layers_axis(series)};
  spec.repetitions = options.repetitions;
  spec.master_seed = options.master_seed;

  exp::ScenarioRunner runner(spec);
  const exp::Workload fx = benchx::load_bench_workload(spec.workload);
  const exp::ScenarioResult result =
      runner.run(fx, benchx::store_options_from_env(spec.name),
                 [&](const exp::ScenarioPoint& p) {
        if (p.labels[1] == series.back()) {
          std::cerr << "[fig4a] rate " << p.values[0] * 100.0 << "% done\n";
        }
      });

  std::vector<std::string> columns{"rate_%"};
  for (const auto& s : series) columns.push_back(s + "_acc_%");
  columns.push_back("stddev_combined");
  core::Table table(columns);
  for (std::size_t i = 0; i < rates.size(); ++i) {
    std::vector<std::string> row{core::format_double(rates[i] * 100.0, 0)};
    for (std::size_t j = 0; j < series.size(); ++j) {
      row.push_back(benchx::pct(result.at({i, j}).mean));
    }
    row.push_back(benchx::pct(result.at({i, series.size() - 1}).stddev));
    table.add_row(std::move(row));
  }

  benchx::emit("Fig 4a: bit-flip injection rate vs accuracy per layer",
               "fig4a_bitflip_layers", table);
  std::cout << "clean accuracy: " << benchx::pct(fx.clean_accuracy) << "%\n";
  std::cout << "expected shape: accuracy decreases with rate; convolutional "
               "layers are more susceptible to bit-flips than dense layers "
               "(paper, Sec. IV); combined is worst.\n";
  return 0;
}

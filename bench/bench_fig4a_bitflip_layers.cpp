// Fig 4a: impact of bit-flip injection rate on individual LeNet layers.
//
// Sweep: injection rate 0..30%, series conv1/conv2/dense0/dense1/combined,
// each point averaged over re-seeded repetitions (paper: 100).
#include <iostream>

#include "bench_common.hpp"
#include "core/campaign.hpp"
#include "models/zoo.hpp"

using namespace flim;

int main() {
  const benchx::BenchOptions options = benchx::options_from_env();
  const benchx::LenetFixture fx = benchx::make_lenet_fixture(options);

  std::vector<std::string> series = models::lenet_faultable_layers();
  series.push_back("combined");
  const std::vector<double> rates{0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30};

  std::vector<std::string> columns{"rate_%"};
  for (const auto& s : series) columns.push_back(s + "_acc_%");
  columns.push_back("stddev_combined");
  core::Table table(columns);

  core::CampaignConfig campaign;
  campaign.repetitions = options.repetitions;
  campaign.master_seed = options.master_seed;

  for (const double rate : rates) {
    std::vector<std::string> row{core::format_double(rate * 100.0, 0)};
    core::Summary combined_summary;
    for (const auto& s : series) {
      const std::vector<std::string> filter =
          s == "combined" ? std::vector<std::string>{}
                          : std::vector<std::string>{s};
      const core::Summary summary =
          core::run_repeated(campaign, [&](std::uint64_t seed) {
            fault::FaultSpec spec;
            spec.kind = fault::FaultKind::kBitFlip;
            spec.injection_rate = rate;
            return benchx::evaluate_with_faults(fx.model, fx.eval_batch,
                                                fx.layers, filter, spec, seed,
                                                {64, 64});
          });
      row.push_back(benchx::pct(summary.mean));
      if (s == "combined") combined_summary = summary;
    }
    row.push_back(benchx::pct(combined_summary.stddev));
    table.add_row(std::move(row));
    std::cerr << "[fig4a] rate " << rate * 100.0 << "% done\n";
  }

  benchx::emit("Fig 4a: bit-flip injection rate vs accuracy per layer",
               "fig4a_bitflip_layers", table);
  std::cout << "clean accuracy: " << benchx::pct(fx.clean_accuracy) << "%\n";
  std::cout << "expected shape: accuracy decreases with rate; convolutional "
               "layers are more susceptible to bit-flips than dense layers "
               "(paper, Sec. IV); combined is worst.\n";
  return 0;
}

// Ablation A1: fault granularity -- output-element (the paper's TF-level
// implementation) vs product-term (device-faithful) masks. Compares both
// accuracy impact and injection runtime, quantifying the accuracy/speed
// trade the paper makes by abstracting to the XNOR-operation level.
#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "core/campaign.hpp"
#include "models/zoo.hpp"

using namespace flim;

int main() {
  const benchx::BenchOptions options = benchx::options_from_env();
  const benchx::LenetFixture fx = benchx::make_lenet_fixture(options);

  const std::vector<double> rates{0.0, 0.10, 0.20, 0.30};
  core::Table table({"rate_%", "output_element_acc_%", "product_term_acc_%",
                     "output_element_s", "product_term_s"});

  core::CampaignConfig campaign;
  campaign.repetitions = options.repetitions;
  campaign.master_seed = options.master_seed;

  for (const double rate : rates) {
    std::vector<std::string> row{core::format_double(rate * 100.0, 0)};
    std::vector<double> times;
    for (const auto granularity : {fault::FaultGranularity::kOutputElement,
                                   fault::FaultGranularity::kProductTerm}) {
      const auto start = std::chrono::steady_clock::now();
      const core::Summary s =
          core::run_repeated(campaign, [&](std::uint64_t seed) {
            fault::FaultSpec spec;
            spec.kind = fault::FaultKind::kStuckAt;
            spec.injection_rate = rate;
            spec.granularity = granularity;
            return benchx::evaluate_with_faults(fx.model, fx.eval_batch,
                                                fx.layers, {}, spec, seed,
                                                {64, 64});
          });
      row.push_back(benchx::pct(s.mean));
      times.push_back(std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count());
    }
    for (const double t : times) row.push_back(core::format_double(t, 2));
    table.add_row(std::move(row));
    std::cerr << "[ablation-granularity] rate " << rate * 100.0 << "% done\n";
  }

  benchx::emit(
      "Ablation A1: fault granularity (stuck-at, all layers, acc + runtime)",
      "ablation_granularity", table);
  std::cout << "clean accuracy: " << benchx::pct(fx.clean_accuracy) << "%\n";
  std::cout << "reading: output-element masking (FLIM's abstraction) runs on "
               "the clean fast path plus a feature-map pass; product-term "
               "masking pays the masked-GEMM cost. Both degrade accuracy; "
               "at equal rate the output-element abstraction is more "
               "aggressive because a single mask slot kills a whole output "
               "element rather than one of K product terms.\n";
  return 0;
}

// Fig 4b: impact of stuck-at injection rate on individual LeNet layers.
#include <iostream>

#include "bench_common.hpp"
#include "core/campaign.hpp"
#include "models/zoo.hpp"

using namespace flim;

int main() {
  const benchx::BenchOptions options = benchx::options_from_env();
  const benchx::LenetFixture fx = benchx::make_lenet_fixture(options);

  std::vector<std::string> series = models::lenet_faultable_layers();
  series.push_back("combined");
  const std::vector<double> rates{0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30};

  std::vector<std::string> columns{"rate_%"};
  for (const auto& s : series) columns.push_back(s + "_acc_%");
  core::Table table(columns);

  core::CampaignConfig campaign;
  campaign.repetitions = options.repetitions;
  campaign.master_seed = options.master_seed;

  for (const double rate : rates) {
    std::vector<std::string> row{core::format_double(rate * 100.0, 0)};
    for (const auto& s : series) {
      const std::vector<std::string> filter =
          s == "combined" ? std::vector<std::string>{}
                          : std::vector<std::string>{s};
      const core::Summary summary =
          core::run_repeated(campaign, [&](std::uint64_t seed) {
            fault::FaultSpec spec;
            spec.kind = fault::FaultKind::kStuckAt;
            spec.injection_rate = rate;
            return benchx::evaluate_with_faults(fx.model, fx.eval_batch,
                                                fx.layers, filter, spec, seed,
                                                {64, 64});
          });
      row.push_back(benchx::pct(summary.mean));
    }
    table.add_row(std::move(row));
    std::cerr << "[fig4b] rate " << rate * 100.0 << "% done\n";
  }

  benchx::emit("Fig 4b: stuck-at injection rate vs accuracy per layer",
               "fig4b_stuckat_layers", table);
  std::cout << "clean accuracy: " << benchx::pct(fx.clean_accuracy) << "%\n";
  std::cout << "expected shape: stuck-at curves fall faster than Fig 4a "
               "bit-flips at equal rate and hit all layers strongly.\n";
  return 0;
}

// Fig 4b: impact of stuck-at injection rate on individual LeNet layers --
// one rate x layer scenario on the FLIM backend.
#include <iostream>

#include "bench_common.hpp"
#include "models/zoo.hpp"

using namespace flim;

int main() {
  const benchx::BenchOptions options = benchx::options_from_env();

  std::vector<std::string> series = models::lenet_faultable_layers();
  series.push_back("combined");
  const std::vector<double> rates{0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30};

  exp::ScenarioSpec spec;
  spec.name = "fig4b_stuckat_layers";
  spec.workload = benchx::lenet_workload_spec(options);
  spec.fault.kind = fault::FaultKind::kStuckAt;
  spec.axes = {benchx::rate_or_expr_axis(rates), exp::layers_axis(series)};
  spec.repetitions = options.repetitions;
  spec.master_seed = options.master_seed;

  exp::ScenarioRunner runner(spec);
  const exp::Workload fx = benchx::load_bench_workload(spec.workload);
  const exp::ScenarioResult result =
      runner.run(fx, benchx::store_options_from_env(spec.name),
                 [&](const exp::ScenarioPoint& p) {
        if (p.labels[1] == series.back()) {
          std::cerr << "[fig4b] rate " << p.values[0] * 100.0 << "% done\n";
        }
      });

  std::vector<std::string> columns{"rate_%"};
  for (const auto& s : series) columns.push_back(s + "_acc_%");
  core::Table table(columns);
  for (std::size_t i = 0; i < rates.size(); ++i) {
    std::vector<std::string> row{core::format_double(rates[i] * 100.0, 0)};
    for (std::size_t j = 0; j < series.size(); ++j) {
      row.push_back(benchx::pct(result.at({i, j}).mean));
    }
    table.add_row(std::move(row));
  }

  benchx::emit("Fig 4b: stuck-at injection rate vs accuracy per layer",
               "fig4b_stuckat_layers", table);
  std::cout << "clean accuracy: " << benchx::pct(fx.clean_accuracy) << "%\n";
  std::cout << "expected shape: stuck-at curves fall faster than Fig 4a "
               "bit-flips at equal rate and hit all layers strongly.\n";
  return 0;
}

// Table II: overview of the BNN models and their characteristics
// (Top-1 accuracy on the synthetic task, size, parameters, MACs, %binarized).
#include <iostream>

#include "bench_common.hpp"
#include "models/zoo.hpp"

using namespace flim;

int main() {
  benchx::BenchOptions options = benchx::options_from_env();
  options.epochs = std::min(options.epochs, 2);
  options.train_samples = std::min<std::int64_t>(options.train_samples, 2000);
  const benchx::ZooFixture fx = benchx::make_zoo_fixture(options);

  core::Table table({"model", "top1_acc_%", "size_MB", "params", "MACs",
                     "binarized_%"});
  for (const auto& name : models::zoo_model_names()) {
    const bnn::Model model = benchx::load_zoo_model(name, fx, options);
    const bnn::ModelCharacteristics c =
        model.analyze(tensor::FloatTensor(tensor::Shape{1, 3, 32, 32}, 0.3f));
    bnn::ReferenceEngine ref;
    const double top1 = model.evaluate(fx.eval_batch, ref);
    table.add(name, benchx::pct(top1), core::format_double(c.size_megabytes, 3),
              c.total_params, c.total_macs,
              core::format_double(c.binarized_percent, 2));
    std::cerr << "[table2] " << name << " done\n";
  }

  benchx::emit("Table II: BNN models and their characteristics (scaled zoo)",
               "table2_model_zoo", table);
  std::cout << "note: architectures are scaled-down family representatives "
               "trained on the synthetic 10-class task (DESIGN.md); the "
               "columns mirror the paper's Table II. The DenseNet ladder "
               "(28 < 37 < 45 params) and the relative size ordering are "
               "preserved.\n";
  return 0;
}

// Fig 4f: performance comparison -- X-Fault-style device simulation vs FLIM
// (single-thread and multi-thread) vs vanilla inference -- plus the compiled
// execution pipeline (bnn::ForwardPlan + tensor::Workspace) measured against
// the legacy per-call forward path.
//
// Protocol mirrors the paper: the fast paths run the full workload directly
// (with the fault mechanism mapped but no faults injected, so vanilla is the
// lower bound), while the device baseline is measured on a few images and
// extrapolated to the full workload -- exactly how the paper estimates
// X-Fault "based on five images". The reported workload is 10,000 images x
// 50 runs like the paper's; measured sizes are scaled by environment knobs:
//   FLIM_FIG4F_IMAGES         images actually run on the fast paths (1000)
//   FLIM_FIG4F_RUNS           fast-path repetitions measured (2)
//   FLIM_FIG4F_DEVICE_IMAGES  images run on the device engine (1)
//   FLIM_FIG4F_ZOO_MODEL      zoo model for the plan-vs-legacy section
//   FLIM_FIG4F_ZOO_IMAGES     images per measured zoo run (64)
//
// Flags:
//   --quick       tiny sizes for CI smoke runs
//   --json PATH   machine-readable JSON output (default
//                 $FLIM_BENCH_JSON or ./BENCH_fig4f_performance.json)
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "bench_common.hpp"
#include "bnn/flim_engine.hpp"
#include "bnn/plan.hpp"
#include "core/rng.hpp"
#include "core/sysinfo.hpp"
#include "core/thread_pool.hpp"
#include "models/zoo.hpp"
#include "tensor/workspace.hpp"
#include "xfault/device_engine.hpp"

using namespace flim;

namespace {

std::int64_t env_i64(const char* name, std::int64_t fallback) {
  if (const char* v = std::getenv(name)) return std::strtoll(v, nullptr, 10);
  return fallback;
}

std::string env_str(const char* name, const std::string& fallback) {
  if (const char* v = std::getenv(name)) return v;
  return fallback;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Evaluates `count` images in batches through `engine`; returns wall time.
double run_inference(const bnn::Model& model, const data::Dataset& ds,
                     std::int64_t count, bnn::XnorExecutionEngine& engine,
                     std::int64_t batch_size = 100) {
  const auto start = std::chrono::steady_clock::now();
  for (std::int64_t begin = 0; begin < count; begin += batch_size) {
    const std::int64_t n = std::min(batch_size, count - begin);
    const data::Batch batch = data::load_batch(ds, begin, n);
    model.forward(batch.images, engine);
  }
  return seconds_since(start);
}

// Same workload through a compiled plan; batches must divide evenly (the
// caller rounds `count` down) so every batch matches the planned shape.
double run_plan_inference(const bnn::ForwardPlan& plan,
                          const data::Dataset& ds, std::int64_t count,
                          tensor::Workspace& ws,
                          bnn::XnorExecutionEngine& engine,
                          std::int64_t batch_size = 100,
                          core::ThreadPool* pool = nullptr) {
  const auto start = std::chrono::steady_clock::now();
  for (std::int64_t begin = 0; begin < count; begin += batch_size) {
    const data::Batch batch = data::load_batch(ds, begin, batch_size);
    plan.execute(batch.images, ws, engine, pool);
  }
  return seconds_since(start);
}

// FLIM engine with the fault mechanism mapped on every binarized layer but
// zero faults injected -- the paper's performance configuration and the
// campaign inner-loop shape.
bnn::FlimEngine clean_mapped_engine(
    const std::vector<bnn::LayerWorkload>& layers) {
  fault::FaultVectorEntry clean_entry;
  clean_entry.mask = fault::FaultMask(64, 64);
  bnn::FlimEngine engine;
  for (const auto& layer : layers) {
    fault::FaultVectorEntry e = clean_entry;
    e.layer_name = layer.layer_name;
    engine.set_layer_fault(e);
  }
  return engine;
}

struct Throughput {
  double seconds = 0.0;
  std::int64_t images = 0;
  std::uint64_t steady_allocations = 0;  // plan paths only

  double images_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(images) / seconds : 0.0;
  }
  double ns_per_image() const {
    return images > 0 ? seconds * 1e9 / static_cast<double>(images) : 0.0;
  }
};

std::string json_number(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

void json_throughput(std::ostringstream& os, const std::string& key,
                     const Throughput& t, bool with_allocations,
                     const char* trailing = ",") {
  os << "    \"" << key << "\": {\"seconds\": " << json_number(t.seconds)
     << ", \"images\": " << t.images
     << ", \"images_per_sec\": " << json_number(t.images_per_sec())
     << ", \"ns_per_image\": " << json_number(t.ns_per_image());
  if (with_allocations) {
    os << ", \"workspace_allocations_steady\": " << t.steady_allocations;
  }
  os << "}" << trailing << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path =
      env_str("FLIM_BENCH_JSON", "BENCH_fig4f_performance.json");
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: bench_fig4f_performance [--quick] [--json PATH]\n";
      return 2;
    }
  }

  benchx::BenchOptions options = benchx::options_from_env();
  if (quick) {
    options.train_samples = std::min<std::int64_t>(options.train_samples, 256);
    options.epochs = 1;
    options.eval_images = std::min<std::int64_t>(options.eval_images, 64);
  }
  const benchx::LenetFixture fx = benchx::make_lenet_fixture(options);

  const std::int64_t paper_images = 10000;
  const std::int64_t paper_runs = 50;
  // Whole batches only: the compiled plan is built for one batch shape.
  // Never exceed the dataset (tiny fixtures shrink the batch instead).
  const std::int64_t batch =
      std::min<std::int64_t>(quick ? 20 : 100, fx.dataset.size());
  std::int64_t fast_images =
      std::min<std::int64_t>(env_i64("FLIM_FIG4F_IMAGES", quick ? 100 : 1000),
                             fx.dataset.size());
  fast_images = std::max<std::int64_t>(batch, (fast_images / batch) * batch);
  const std::int64_t fast_runs = env_i64("FLIM_FIG4F_RUNS", quick ? 1 : 2);
  const std::int64_t device_images = env_i64("FLIM_FIG4F_DEVICE_IMAGES", 1);
  const double scale =
      static_cast<double>(paper_images) / static_cast<double>(fast_images) *
      static_cast<double>(paper_runs);

  std::cerr << "[fig4f] vanilla (reference engine), " << fast_runs << " x "
            << fast_images << " images...\n";
  Throughput vanilla;
  vanilla.images = fast_images;
  {
    bnn::ReferenceEngine engine;
    for (std::int64_t r = 0; r < fast_runs; ++r) {
      vanilla.seconds +=
          run_inference(fx.model, fx.dataset, fast_images, engine, batch);
    }
    vanilla.seconds /= static_cast<double>(fast_runs);
  }

  std::cerr << "[fig4f] FLIM CPU legacy path (masks mapped, no faults)...\n";
  Throughput flim_legacy;
  flim_legacy.images = fast_images;
  {
    bnn::FlimEngine engine = clean_mapped_engine(fx.layers);
    for (std::int64_t r = 0; r < fast_runs; ++r) {
      flim_legacy.seconds +=
          run_inference(fx.model, fx.dataset, fast_images, engine, batch);
    }
    flim_legacy.seconds /= static_cast<double>(fast_runs);
  }

  std::cerr << "[fig4f] FLIM CPU compiled plan (workspace arena)...\n";
  const bnn::ForwardPlan lenet_plan(
      fx.model, tensor::Shape{batch, 1, 28, 28});
  Throughput flim_plan;
  flim_plan.images = fast_images;
  {
    bnn::FlimEngine engine = clean_mapped_engine(fx.layers);
    tensor::Workspace ws;
    // Warm-up: buffers grow to their high-water mark once.
    run_plan_inference(lenet_plan, fx.dataset, batch, ws, engine, batch);
    const std::uint64_t before = ws.allocation_count();
    for (std::int64_t r = 0; r < fast_runs; ++r) {
      flim_plan.seconds += run_plan_inference(lenet_plan, fx.dataset,
                                              fast_images, ws, engine, batch);
    }
    flim_plan.seconds /= static_cast<double>(fast_runs);
    flim_plan.steady_allocations = ws.allocation_count() - before;
  }

  std::cerr << "[fig4f] FLIM multi-threaded (GPU stand-in)...\n";
  core::ThreadPool pool;
  Throughput flim_mt;
  flim_mt.images = fast_images;
  {
    const std::int64_t num_batches = fast_images / batch;
    for (std::int64_t r = 0; r < fast_runs; ++r) {
      const auto start = std::chrono::steady_clock::now();
      pool.parallel_for(static_cast<std::size_t>(num_batches),
                        [&](std::size_t b) {
                          // One engine per task: engines are stateful.
                          bnn::FlimEngine engine =
                              clean_mapped_engine(fx.layers);
                          const std::int64_t begin =
                              static_cast<std::int64_t>(b) * batch;
                          const data::Batch images =
                              data::load_batch(fx.dataset, begin, batch);
                          fx.model.forward(images.images, engine);
                        });
      flim_mt.seconds += seconds_since(start);
    }
    flim_mt.seconds /= static_cast<double>(fast_runs);
  }

  std::cerr << "[fig4f] device engine (X-Fault baseline) on " << device_images
            << " image(s)...\n";
  double device_per_image_s = 0.0;
  {
    xfault::DeviceEngineConfig cfg;
    cfg.crossbar.rows = 64;
    cfg.crossbar.cols = 256;
    xfault::DeviceEngine engine(cfg);
    const auto start = std::chrono::steady_clock::now();
    const data::Batch db = data::load_batch(fx.dataset, 0, device_images);
    fx.model.forward(db.images, engine);
    device_per_image_s =
        seconds_since(start) / static_cast<double>(device_images);
  }

  // ------------------------------------------------------------------
  // Plan-vs-legacy on a multi-layer zoo model: the campaign inner loop
  // that the compiled pipeline exists to accelerate. Untrained weights --
  // throughput does not depend on training, and skipping it keeps the
  // smoke run fast and deterministic.
  const std::string zoo_name =
      env_str("FLIM_FIG4F_ZOO_MODEL", "BinaryResNetE18");
  const std::int64_t zoo_batch = quick ? 8 : 32;
  const std::int64_t zoo_images =
      std::max<std::int64_t>(
          zoo_batch,
          (env_i64("FLIM_FIG4F_ZOO_IMAGES", quick ? 16 : 64) / zoo_batch) *
              zoo_batch);
  std::cerr << "[fig4f] zoo model " << zoo_name << ", plan vs legacy on "
            << zoo_images << " images x " << fast_runs << " runs...\n";
  bnn::Model zoo_model =
      models::build_zoo_graph(zoo_name, options.master_seed)
          .to_inference_model();
  const auto zoo_layers =
      zoo_model.analyze(tensor::FloatTensor(tensor::Shape{1, 3, 32, 32}, 0.3f))
          .binarized_layers;
  tensor::FloatTensor zoo_input(tensor::Shape{zoo_batch, 3, 32, 32});
  {
    core::Rng rng(options.master_seed);
    for (std::int64_t i = 0; i < zoo_input.numel(); ++i) {
      zoo_input[i] = static_cast<float>(rng.uniform_double() * 2.0 - 1.0);
    }
  }
  const std::int64_t zoo_batches = zoo_images / zoo_batch;

  Throughput zoo_legacy;
  zoo_legacy.images = zoo_images;
  {
    bnn::FlimEngine engine = clean_mapped_engine(zoo_layers);
    for (std::int64_t r = 0; r < fast_runs; ++r) {
      const auto start = std::chrono::steady_clock::now();
      for (std::int64_t b = 0; b < zoo_batches; ++b) {
        zoo_model.forward(zoo_input, engine);
      }
      zoo_legacy.seconds += seconds_since(start);
    }
    zoo_legacy.seconds /= static_cast<double>(fast_runs);
  }

  const bnn::ForwardPlan zoo_plan(zoo_model, zoo_input.shape());
  Throughput zoo_plan_tp;
  zoo_plan_tp.images = zoo_images;
  {
    bnn::FlimEngine engine = clean_mapped_engine(zoo_layers);
    tensor::Workspace ws;
    zoo_plan.execute(zoo_input, ws, engine);  // warm-up
    const std::uint64_t before = ws.allocation_count();
    for (std::int64_t r = 0; r < fast_runs; ++r) {
      const auto start = std::chrono::steady_clock::now();
      for (std::int64_t b = 0; b < zoo_batches; ++b) {
        zoo_plan.execute(zoo_input, ws, engine);
      }
      zoo_plan_tp.seconds += seconds_since(start);
    }
    zoo_plan_tp.seconds /= static_cast<double>(fast_runs);
    zoo_plan_tp.steady_allocations = ws.allocation_count() - before;
  }

  Throughput zoo_plan_pooled;
  zoo_plan_pooled.images = zoo_images;
  {
    bnn::FlimEngine engine = clean_mapped_engine(zoo_layers);
    tensor::Workspace ws;
    zoo_plan.execute(zoo_input, ws, engine, &pool);  // warm-up
    const std::uint64_t before = ws.allocation_count();
    for (std::int64_t r = 0; r < fast_runs; ++r) {
      const auto start = std::chrono::steady_clock::now();
      for (std::int64_t b = 0; b < zoo_batches; ++b) {
        zoo_plan.execute(zoo_input, ws, engine, &pool);
      }
      zoo_plan_pooled.seconds += seconds_since(start);
    }
    zoo_plan_pooled.seconds /= static_cast<double>(fast_runs);
    zoo_plan_pooled.steady_allocations = ws.allocation_count() - before;
  }

  const double lenet_speedup =
      flim_plan.seconds > 0.0 ? flim_legacy.seconds / flim_plan.seconds : 0.0;
  const double zoo_speedup = zoo_plan_tp.seconds > 0.0
                                 ? zoo_legacy.seconds / zoo_plan_tp.seconds
                                 : 0.0;
  const double zoo_pooled_speedup =
      zoo_plan_pooled.seconds > 0.0
          ? zoo_legacy.seconds / zoo_plan_pooled.seconds
          : 0.0;

  const double vanilla_total = vanilla.seconds * scale;
  const double flim_cpu_total = flim_legacy.seconds * scale;
  const double flim_plan_total = flim_plan.seconds * scale;
  const double flim_mt_total = flim_mt.seconds * scale;
  const double device_total = device_per_image_s *
                              static_cast<double>(paper_images) *
                              static_cast<double>(paper_runs);

  core::Table table({"platform", "measured_s", "extrapolated_total_s",
                     "speedup_vs_device"});
  table.add("X-Fault-style device sim",
            core::format_double(device_per_image_s, 3) + " /image",
            core::format_double(device_total, 0), std::string("1x"));
  table.add("FLIM (CPU, legacy forward)",
            core::format_double(flim_legacy.seconds, 3),
            core::format_double(flim_cpu_total, 1),
            core::format_double(device_total / flim_cpu_total, 0) + "x");
  table.add("FLIM (CPU, compiled plan)",
            core::format_double(flim_plan.seconds, 3),
            core::format_double(flim_plan_total, 1),
            core::format_double(device_total / flim_plan_total, 0) + "x");
  table.add("FLIM (CPU, multi-threaded)",
            core::format_double(flim_mt.seconds, 3),
            core::format_double(flim_mt_total, 1),
            core::format_double(device_total / flim_mt_total, 0) + "x");
  table.add("Vanilla (no fault hooks)", core::format_double(vanilla.seconds, 3),
            core::format_double(vanilla_total, 1),
            core::format_double(device_total / vanilla_total, 0) + "x");
  table.add(zoo_name + " legacy forward",
            core::format_double(zoo_legacy.seconds, 3), "-", "-");
  table.add(zoo_name + " compiled plan (" +
                core::format_double(zoo_speedup, 2) + "x)",
            core::format_double(zoo_plan_tp.seconds, 3), "-", "-");
  table.add(zoo_name + " plan + pool (" +
                core::format_double(zoo_pooled_speedup, 2) + "x)",
            core::format_double(zoo_plan_pooled.seconds, 3), "-", "-");

  benchx::emit(
      "Fig 4f: runtime for 10,000 images x 50 runs (device baseline "
      "extrapolated from " +
          std::to_string(device_images) + " image(s), as in the paper)",
      "fig4f_performance", table);

  // Machine-readable trajectory record.
  std::ostringstream js;
  js << "{\n"
     << "  \"bench\": \"fig4f_performance\",\n"
     << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
     << "  \"threads\": " << pool.size() << ",\n"
     << "  \"device_seconds_per_image\": " << json_number(device_per_image_s)
     << ",\n"
     << "  \"lenet\": {\n";
  json_throughput(js, "vanilla_reference", vanilla, false);
  json_throughput(js, "legacy_flim", flim_legacy, false);
  json_throughput(js, "plan_flim", flim_plan, true);
  json_throughput(js, "legacy_flim_multithread", flim_mt, false);
  js << "    \"plan_speedup\": " << json_number(lenet_speedup) << "\n"
     << "  },\n"
     << "  \"zoo\": {\n"
     << "    \"model\": \"" << zoo_name << "\",\n";
  json_throughput(js, "legacy_flim", zoo_legacy, false);
  json_throughput(js, "plan_flim", zoo_plan_tp, true);
  json_throughput(js, "plan_flim_pooled", zoo_plan_pooled, true);
  js << "    \"plan_speedup\": " << json_number(zoo_speedup) << ",\n"
     << "    \"plan_pooled_speedup\": " << json_number(zoo_pooled_speedup)
     << ",\n"
     << "    \"plan_speedup_best\": "
     << json_number(std::max(zoo_speedup, zoo_pooled_speedup)) << "\n"
     << "  }\n"
     << "}\n";
  std::ofstream out(json_path);
  out << js.str();
  out.close();
  std::cout << "[json] " << json_path << "\n";

  std::cout << "expected shape: FLIM is orders of magnitude faster than the "
               "device-level baseline; vanilla bounds FLIM from below; the "
               "compiled plan beats the legacy forward path (zero steady-"
               "state workspace allocations) and the multi-threaded "
               "configuration scales with cores (the paper's GPU doubled "
               "its CPU).\n";
  std::cout << core::format_system_info(core::collect_system_info());
  return 0;
}

// Fig 4f: performance comparison -- X-Fault-style device simulation vs FLIM
// (single-thread and multi-thread) vs vanilla inference.
//
// Protocol mirrors the paper: the fast paths run the full workload directly
// (with the fault mechanism mapped but no faults injected, so vanilla is the
// lower bound), while the device baseline is measured on a few images and
// extrapolated to the full workload -- exactly how the paper estimates
// X-Fault "based on five images". The reported workload is 10,000 images x
// 50 runs like the paper's; measured sizes are scaled by environment knobs:
//   FLIM_FIG4F_IMAGES         images actually run on the fast paths (1000)
//   FLIM_FIG4F_RUNS           fast-path repetitions measured (2)
//   FLIM_FIG4F_DEVICE_IMAGES  images run on the device engine (1)
#include <chrono>
#include <cstdlib>
#include <iostream>

#include "bench_common.hpp"
#include "bnn/flim_engine.hpp"
#include "core/sysinfo.hpp"
#include "core/thread_pool.hpp"
#include "xfault/device_engine.hpp"

using namespace flim;

namespace {

std::int64_t env_i64(const char* name, std::int64_t fallback) {
  if (const char* v = std::getenv(name)) return std::strtoll(v, nullptr, 10);
  return fallback;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Evaluates `count` images in batches through `engine`; returns wall time.
double run_inference(const bnn::Model& model, const data::Dataset& ds,
                     std::int64_t count, bnn::XnorExecutionEngine& engine,
                     std::int64_t batch_size = 100) {
  const auto start = std::chrono::steady_clock::now();
  for (std::int64_t begin = 0; begin < count; begin += batch_size) {
    const std::int64_t n = std::min(batch_size, count - begin);
    const data::Batch batch = data::load_batch(ds, begin, n);
    model.forward(batch.images, engine);
  }
  return seconds_since(start);
}

}  // namespace

int main() {
  benchx::BenchOptions options = benchx::options_from_env();
  const benchx::LenetFixture fx = benchx::make_lenet_fixture(options);

  const std::int64_t paper_images = 10000;
  const std::int64_t paper_runs = 50;
  const std::int64_t fast_images =
      std::min<std::int64_t>(env_i64("FLIM_FIG4F_IMAGES", 1000),
                             fx.dataset.size());
  const std::int64_t fast_runs = env_i64("FLIM_FIG4F_RUNS", 2);
  const std::int64_t device_images = env_i64("FLIM_FIG4F_DEVICE_IMAGES", 1);
  const double scale =
      static_cast<double>(paper_images) / static_cast<double>(fast_images) *
      static_cast<double>(paper_runs);

  // FLIM configuration: mapping configured but zero faults injected, as in
  // the paper's performance experiment.
  fault::FaultVectorEntry clean_entry;
  clean_entry.mask = fault::FaultMask(64, 64);

  std::cerr << "[fig4f] vanilla (reference engine), " << fast_runs << " x "
            << fast_images << " images...\n";
  double vanilla_s = 0.0;
  {
    bnn::ReferenceEngine engine;
    for (std::int64_t r = 0; r < fast_runs; ++r) {
      vanilla_s += run_inference(fx.model, fx.dataset, fast_images, engine);
    }
    vanilla_s /= static_cast<double>(fast_runs);
  }

  std::cerr << "[fig4f] FLIM CPU (masks mapped, no faults)...\n";
  double flim_cpu_s = 0.0;
  {
    bnn::FlimEngine engine;
    for (const auto& layer : fx.layers) {
      fault::FaultVectorEntry e = clean_entry;
      e.layer_name = layer.layer_name;
      engine.set_layer_fault(e);
    }
    for (std::int64_t r = 0; r < fast_runs; ++r) {
      flim_cpu_s += run_inference(fx.model, fx.dataset, fast_images, engine);
    }
    flim_cpu_s /= static_cast<double>(fast_runs);
  }

  std::cerr << "[fig4f] FLIM multi-threaded (GPU stand-in)...\n";
  double flim_mt_s = 0.0;
  {
    core::ThreadPool pool;
    const std::int64_t batch = 100;
    const std::int64_t num_batches = (fast_images + batch - 1) / batch;
    for (std::int64_t r = 0; r < fast_runs; ++r) {
      const auto start = std::chrono::steady_clock::now();
      pool.parallel_for(static_cast<std::size_t>(num_batches),
                        [&](std::size_t b) {
                          // One engine per task: engines are stateful.
                          bnn::FlimEngine engine;
                          for (const auto& layer : fx.layers) {
                            fault::FaultVectorEntry e = clean_entry;
                            e.layer_name = layer.layer_name;
                            engine.set_layer_fault(e);
                          }
                          const std::int64_t begin =
                              static_cast<std::int64_t>(b) * batch;
                          const std::int64_t n =
                              std::min(batch, fast_images - begin);
                          const data::Batch images =
                              data::load_batch(fx.dataset, begin, n);
                          fx.model.forward(images.images, engine);
                        });
      flim_mt_s += seconds_since(start);
    }
    flim_mt_s /= static_cast<double>(fast_runs);
  }

  std::cerr << "[fig4f] device engine (X-Fault baseline) on " << device_images
            << " image(s)...\n";
  double device_per_image_s = 0.0;
  {
    xfault::DeviceEngineConfig cfg;
    cfg.crossbar.rows = 64;
    cfg.crossbar.cols = 256;
    xfault::DeviceEngine engine(cfg);
    const auto start = std::chrono::steady_clock::now();
    const data::Batch batch = data::load_batch(fx.dataset, 0, device_images);
    fx.model.forward(batch.images, engine);
    device_per_image_s =
        seconds_since(start) / static_cast<double>(device_images);
  }

  const double vanilla_total = vanilla_s * scale;
  const double flim_cpu_total = flim_cpu_s * scale;
  const double flim_mt_total = flim_mt_s * scale;
  const double device_total = device_per_image_s *
                              static_cast<double>(paper_images) *
                              static_cast<double>(paper_runs);

  core::Table table({"platform", "measured_s", "extrapolated_total_s",
                     "speedup_vs_device"});
  table.add("X-Fault-style device sim",
            core::format_double(device_per_image_s, 3) + " /image",
            core::format_double(device_total, 0), std::string("1x"));
  table.add("FLIM (CPU)", core::format_double(flim_cpu_s, 3),
            core::format_double(flim_cpu_total, 1),
            core::format_double(device_total / flim_cpu_total, 0) + "x");
  table.add("FLIM (CPU, multi-threaded)", core::format_double(flim_mt_s, 3),
            core::format_double(flim_mt_total, 1),
            core::format_double(device_total / flim_mt_total, 0) + "x");
  table.add("Vanilla (no fault hooks)", core::format_double(vanilla_s, 3),
            core::format_double(vanilla_total, 1),
            core::format_double(device_total / vanilla_total, 0) + "x");

  benchx::emit(
      "Fig 4f: runtime for 10,000 images x 50 runs (device baseline "
      "extrapolated from " +
          std::to_string(device_images) + " image(s), as in the paper)",
      "fig4f_performance", table);
  std::cout << "expected shape: FLIM is orders of magnitude faster than the "
               "device-level baseline; vanilla bounds FLIM from below; the "
               "multi-threaded configuration roughly doubles single-thread "
               "throughput (the paper's GPU doubled its CPU).\n";
  std::cout << core::format_system_info(core::collect_system_info());
  return 0;
}

#include "bench_common.hpp"

#include <cstdlib>
#include <iostream>

#include "bnn/flim_engine.hpp"
#include "core/log.hpp"
#include "core/report.hpp"
#include "core/rng.hpp"
#include "fault/fault_generator.hpp"
#include "models/pretrained.hpp"
#include "models/zoo.hpp"

namespace flim::benchx {

namespace {

std::int64_t env_i64(const char* name, std::int64_t fallback) {
  if (const char* v = std::getenv(name)) {
    return std::strtoll(v, nullptr, 10);
  }
  return fallback;
}

}  // namespace

BenchOptions options_from_env() {
  BenchOptions o;
  o.repetitions = static_cast<int>(env_i64("FLIM_BENCH_REPS", o.repetitions));
  o.eval_images = env_i64("FLIM_BENCH_EVAL_IMAGES", o.eval_images);
  o.train_samples = env_i64("FLIM_BENCH_TRAIN_SAMPLES", o.train_samples);
  o.epochs = static_cast<int>(env_i64("FLIM_BENCH_EPOCHS", o.epochs));
  return o;
}

LenetFixture make_lenet_fixture(const BenchOptions& options) {
  LenetFixture fx;
  data::SyntheticMnistOptions d;
  d.size = options.train_samples + options.eval_images;
  fx.dataset = data::SyntheticMnist(d);

  models::PretrainOptions p;
  p.epochs = options.epochs;
  p.train_samples = options.train_samples;
  p.verbose = true;
  fx.model = models::pretrained_lenet(fx.dataset, p);

  fx.layers = fx.model
                  .analyze(tensor::FloatTensor(tensor::Shape{1, 1, 28, 28},
                                               0.5f))
                  .binarized_layers;
  fx.eval_batch =
      data::load_batch(fx.dataset, options.train_samples, options.eval_images);

  bnn::ReferenceEngine ref;
  fx.clean_accuracy = fx.model.evaluate(fx.eval_batch, ref);
  std::cerr << "[bench] LeNet clean accuracy: " << pct(fx.clean_accuracy)
            << "% on " << options.eval_images << " images\n";
  return fx;
}

exp::WorkloadSpec lenet_workload_spec(const BenchOptions& options) {
  exp::WorkloadSpec w;
  w.model = "lenet";
  w.eval_images = options.eval_images;
  w.epochs = options.epochs;
  w.train_samples = options.train_samples;
  w.verbose = true;
  w.measure_clean_accuracy = true;
  return w;
}

exp::WorkloadSpec zoo_workload_spec(const std::string& name,
                                    const BenchOptions& options) {
  exp::WorkloadSpec w = lenet_workload_spec(options);
  w.model = name;
  return w;
}

exp::Workload load_bench_workload(const exp::WorkloadSpec& spec) {
  exp::Workload w = exp::load_workload(spec);
  std::cerr << "[bench] " << w.model.name() << " clean accuracy: "
            << pct(w.clean_accuracy) << "% on " << spec.eval_images
            << " images\n";
  return w;
}

exp::StoreOptions store_options_from_env(const std::string& scenario_name) {
  exp::StoreOptions store;
  if (const char* dir = std::getenv("FLIM_BENCH_STORE_DIR")) {
    store.store_path = std::string(dir) + "/" + scenario_name + ".run.jsonl";
    store.resume_from = store.store_path;
    std::cerr << "[bench] durable run file: " << store.store_path << "\n";
  }
  return store;
}

exp::ScenarioAxis rate_or_expr_axis(const std::vector<double>& rates) {
  const char* expr = std::getenv("FLIM_BENCH_FAULT_EXPR");
  if (expr == nullptr || *expr == '\0') {
    return exp::rate_axis(rates);
  }
  std::cerr << "[bench] fault-expression override: " << expr << "\n";
  return exp::fault_expr_axis(std::string(expr), rates);
}

ZooFixture make_zoo_fixture(const BenchOptions& options) {
  ZooFixture fx;
  data::SyntheticImagenetOptions d;
  d.size = options.train_samples + options.eval_images;
  fx.dataset = data::SyntheticImagenet(d);
  fx.eval_batch =
      data::load_batch(fx.dataset, options.train_samples, options.eval_images);
  return fx;
}

bnn::Model load_zoo_model(const std::string& name, const ZooFixture& fixture,
                          const BenchOptions& options) {
  models::PretrainOptions p;
  p.epochs = options.epochs;
  p.train_samples = options.train_samples;
  p.verbose = true;
  return models::pretrained_zoo_model(name, fixture.dataset, p);
}

double evaluate_with_faults(const bnn::Model& model, const data::Batch& batch,
                            const std::vector<bnn::LayerWorkload>& layers,
                            const std::vector<std::string>& layer_filter,
                            const fault::FaultSpec& spec, std::uint64_t seed,
                            lim::CrossbarGeometry grid) {
  fault::FaultGenerator gen(grid);
  core::Rng rng(seed);
  bnn::FlimEngine engine;
  for (const auto& layer : layers) {
    if (!layer_filter.empty()) {
      bool selected = false;
      for (const auto& f : layer_filter) {
        if (f == layer.layer_name) selected = true;
      }
      if (!selected) continue;
    }
    fault::FaultVectorEntry entry;
    entry.layer_name = layer.layer_name;
    entry.kind = spec.kind;
    entry.granularity = spec.granularity;
    entry.dynamic_period = spec.dynamic_period;
    entry.mask = gen.generate(spec, rng);
    engine.set_layer_fault(entry);
  }
  return model.evaluate(batch, engine);
}

void emit(const std::string& title, const std::string& csv_name,
          const core::Table& table) {
  core::print_table(std::cout, title, table);
  const std::string path = core::results_dir() + "/" + csv_name + ".csv";
  table.write_csv(path);
  std::cout << "[csv] " << path << "\n\n";
}

std::string pct(double accuracy_fraction) {
  return core::format_double(accuracy_fraction * 100.0, 1);
}

}  // namespace flim::benchx

// Layer resilience mini-study (a compact Fig 4a): sweep bit-flip rates per
// LeNet layer and print the accuracy matrix.
//
// The whole experiment is one declarative scenario: a layer x rate grid on
// the FLIM backend, executed by exp::ScenarioRunner. Compare with the
// pre-scenario revision of this file to see the wiring the scenario layer
// replaces.
#include <iostream>

#include "core/report.hpp"
#include "exp/scenario.hpp"
#include "models/zoo.hpp"

int main() {
  using namespace flim;

  exp::ScenarioSpec spec;
  spec.name = "layer_resilience";
  spec.workload.model = "lenet";
  spec.workload.train_samples = 2000;
  spec.workload.eval_images = 300;
  spec.workload.epochs = 3;
  spec.fault.kind = fault::FaultKind::kBitFlip;
  spec.axes = {exp::layers_axis(models::lenet_faultable_layers()),
               exp::rate_axis({0.0, 0.10, 0.20, 0.30})};
  spec.repetitions = 5;
  spec.master_seed = 42;

  exp::ScenarioRunner runner(spec);
  const exp::ScenarioResult result = runner.run();

  const std::size_t num_layers = result.axis_sizes[0];
  const std::size_t num_rates = result.axis_sizes[1];
  core::Table table({"layer", "0%", "10%", "20%", "30%"});
  for (std::size_t l = 0; l < num_layers; ++l) {
    std::vector<std::string> row{result.points[l * num_rates].labels[0]};
    for (std::size_t r = 0; r < num_rates; ++r) {
      row.push_back(core::format_double(result.at({l, r}).mean * 100.0, 1));
    }
    table.add_row(std::move(row));
  }
  core::print_table(std::cout, "per-layer bit-flip resilience (accuracy %)",
                    table);
  std::cout << "deeper layers degrade faster -- the paper's Fig 4a shape.\n";
  return 0;
}

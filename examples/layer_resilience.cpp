// Layer resilience mini-study (a compact Fig 4a): sweep bit-flip rates per
// LeNet layer and print the accuracy matrix.
#include <iostream>

#include "bnn/engine.hpp"
#include "bnn/flim_engine.hpp"
#include "core/campaign.hpp"
#include "core/report.hpp"
#include "core/rng.hpp"
#include "data/synthetic_mnist.hpp"
#include "fault/fault_generator.hpp"
#include "models/pretrained.hpp"
#include "models/zoo.hpp"

int main() {
  using namespace flim;

  data::SyntheticMnistOptions data_opts;
  data_opts.size = 2500;
  data::SyntheticMnist dataset(data_opts);

  models::PretrainOptions train_opts;
  train_opts.epochs = 3;
  train_opts.train_samples = 2000;
  const bnn::Model model = models::pretrained_lenet(dataset, train_opts);

  const auto layers =
      model.analyze(tensor::FloatTensor(tensor::Shape{1, 1, 28, 28}, 0.5f))
          .binarized_layers;
  const data::Batch test = data::load_batch(dataset, 2000, 300);

  core::CampaignConfig campaign;
  campaign.repetitions = 5;

  core::Table table({"layer", "0%", "10%", "20%", "30%"});
  for (const auto& layer : layers) {
    std::vector<std::string> row{layer.layer_name};
    for (const double rate : {0.0, 0.10, 0.20, 0.30}) {
      const core::Summary s =
          core::run_repeated(campaign, [&](std::uint64_t seed) {
            fault::FaultGenerator gen({64, 64});
            core::Rng rng(seed);
            fault::FaultSpec spec;
            spec.kind = fault::FaultKind::kBitFlip;
            spec.injection_rate = rate;
            fault::FaultVectorEntry entry;
            entry.layer_name = layer.layer_name;
            entry.mask = gen.generate(spec, rng);
            bnn::FlimEngine engine;
            engine.set_layer_fault(entry);
            return model.evaluate(test, engine);
          });
      row.push_back(core::format_double(s.mean * 100.0, 1));
    }
    table.add_row(std::move(row));
  }
  core::print_table(std::cout, "per-layer bit-flip resilience (accuracy %)",
                    table);
  std::cout << "deeper layers degrade faster -- the paper's Fig 4a shape.\n";
  return 0;
}

// In-field reliability loop: detect a defect online, then mitigate it.
//
//   $ ./reliability_monitor
//
// The deployment story the paper's conclusion sketches, end to end:
// a binary MLP serves inferences from a LIM crossbar; a stuck-at defect
// develops in the field; the concurrent canary monitor flags it within a
// bounded number of inferences; an ECC scrub repairs what is repairable;
// and the residual damage is absorbed by majority voting over replicas.
#include <iostream>
#include <memory>

#include "bnn/flim_engine.hpp"
#include "bnn/redundancy.hpp"
#include "core/rng.hpp"
#include "data/synthetic_mnist.hpp"
#include "fault/fault_generator.hpp"
#include "reliability/ecc.hpp"
#include "reliability/monitor.hpp"
#include "train/layers.hpp"
#include "train/optimizer.hpp"
#include "train/trainer.hpp"

int main() {
  using namespace flim;

  // --- deploy: a small binary MLP on synthetic digits -----------------------
  data::SyntheticMnistOptions data_opts;
  data_opts.size = 1600;
  data::SyntheticMnist dataset(data_opts);

  std::cout << "training a small binary MLP...\n";
  core::Rng init(3);
  train::Graph graph("mlp");
  graph.add(std::make_unique<train::TFlatten>("flatten"));
  graph.add(std::make_unique<train::TDense>("stem", 784, 64, init));
  graph.add(std::make_unique<train::TBatchNorm>("stem_bn", 64));
  graph.add(std::make_unique<train::TSign>("stem_sign"));
  graph.add(std::make_unique<train::TBinaryDense>("bd0", 64, 64, init));
  graph.add(std::make_unique<train::TBatchNorm>("bd0_bn", 64));
  graph.add(std::make_unique<train::TSign>("bd0_sign"));
  graph.add(std::make_unique<train::TBinaryDense>("bd1", 64, 10, init));
  graph.add(std::make_unique<train::TBatchNorm>("bd1_bn", 10));

  train::Adam adam(2e-3f);
  train::TrainConfig train_cfg;
  train_cfg.epochs = 4;
  train_cfg.batch_size = 32;
  train_cfg.train_samples = 1200;
  train::fit(graph, adam, dataset, train_cfg);
  bnn::Model model = graph.to_inference_model();

  const data::Batch test = data::load_batch(dataset, 1200, 400);
  bnn::ReferenceEngine vanilla;
  const double clean = model.evaluate(test, vanilla);
  std::cout << "clean accuracy: " << clean * 100 << "%\n";

  // --- a defect develops in the field ---------------------------------------
  const lim::CrossbarGeometry grid{64, 64};
  fault::FaultGenerator gen(grid);
  core::Rng rng(2023);
  fault::FaultSpec defect;
  defect.kind = fault::FaultKind::kStuckAt;
  defect.injection_rate = 0.02;  // sparse enough for SEC-DED to matter
  const fault::FaultMask mask = gen.generate(defect, rng);

  // The defect hits the hidden layer's crossbar. (The 10-op output layer
  // would pin one logit for *every* image if faulted -- see the fig4b bench
  // for that catastrophic case; here we follow the common practice of
  // keeping the tiny classifier head in protected CMOS.)
  const std::string faulted_layer = "bd0";
  bnn::FlimEngine faulty;
  {
    fault::FaultVectorEntry e;
    e.layer_name = faulted_layer;
    e.kind = defect.kind;
    e.mask = mask;
    faulty.set_layer_fault(e);
  }
  const double degraded = model.evaluate(test, faulty);
  std::cout << "\na stuck-at defect develops in " << faulted_layer
            << "'s crossbar (2% of slots): accuracy drops to "
            << degraded * 100 << "%\n";

  // --- the online monitor flags it -------------------------------------------
  reliability::MonitorConfig mon_cfg;
  mon_cfg.grid = grid;
  mon_cfg.test_period = 8;
  mon_cfg.slots_per_round = 16;
  mon_cfg.policy = reliability::CanaryPolicy::kRoundRobin;
  const reliability::OnlineMonitor monitor(mon_cfg);
  const auto detection = monitor.run_until_detection(mask, 1 << 20);
  std::cout << "canary monitor (overhead "
            << monitor.overhead_ops_per_inference()
            << " ops/inference) detects it after "
            << detection.inferences_elapsed << " inferences at slot "
            << detection.detecting_slot << "\n";

  // --- mitigation 1: ECC scrub repairs isolated defects ----------------------
  reliability::EccScrubStats stats;
  const fault::FaultMask residual = reliability::apply_secded_scrub(
      mask, reliability::EccOptions{32, 4}, &stats);
  bnn::FlimEngine scrubbed;
  {
    fault::FaultVectorEntry e;
    e.layer_name = faulted_layer;
    e.kind = defect.kind;
    e.mask = residual;
    scrubbed.set_layer_fault(e);
  }
  const double after_ecc = model.evaluate(test, scrubbed);
  std::cout << "\nECC scrub (SEC-DED, 32-bit words, interleave 4) corrects "
            << stats.corrected_words << "/" << stats.words
            << " words; accuracy recovers to " << after_ecc * 100 << "%\n";

  // --- mitigation 2: majority voting over replicas ---------------------------
  core::Rng replica_rng(77);
  std::vector<std::unique_ptr<bnn::XnorExecutionEngine>> replicas;
  for (int r = 0; r < 3; ++r) {
    auto engine = std::make_unique<bnn::FlimEngine>();
    const fault::FaultMask replica_mask = gen.generate(defect, replica_rng);
    const fault::FaultMask replica_residual = reliability::apply_secded_scrub(
        replica_mask, reliability::EccOptions{32, 4});
    fault::FaultVectorEntry e;
    e.layer_name = faulted_layer;
    e.kind = defect.kind;
    e.mask = replica_residual;
    engine->set_layer_fault(e);
    replicas.push_back(std::move(engine));
  }
  bnn::MedianVoteEngine voter(std::move(replicas));
  const double after_tmr = model.evaluate(test, voter);
  std::cout << "TMR over three independently defective replicas (each ECC "
            << "scrubbed): " << after_tmr * 100 << "%\n";

  std::cout << "\nsummary: clean " << clean * 100 << "% -> faulty "
            << degraded * 100 << "% -> ECC " << after_ecc * 100
            << "% -> ECC+TMR " << after_tmr * 100 << "%\n";
  return 0;
}

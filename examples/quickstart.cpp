// Quickstart: train a small binary LeNet, inject faults, compare accuracy.
//
//   $ ./quickstart
//
// Walks the full FLIM workflow in ~a minute: dataset -> training -> inference
// model -> fault generation -> fault injection -> evaluation.
#include <iostream>

#include "bnn/engine.hpp"
#include "bnn/flim_engine.hpp"
#include "core/rng.hpp"
#include "data/synthetic_mnist.hpp"
#include "fault/fault_generator.hpp"
#include "models/zoo.hpp"
#include "train/trainer.hpp"

int main() {
  using namespace flim;

  // 1. A deterministic synthetic-MNIST dataset (see DESIGN.md for why the
  //    reproduction substitutes procedural digits for MNIST).
  data::SyntheticMnistOptions data_opts;
  data_opts.size = 2500;
  data::SyntheticMnist dataset(data_opts);

  // 2. Train the paper's binary LeNet briefly.
  std::cout << "training binary LeNet on synthetic digits...\n";
  train::Graph graph = models::build_lenet_binary(/*seed=*/1);
  train::Adam adam(2e-3f);
  train::TrainConfig cfg;
  cfg.epochs = 3;
  cfg.batch_size = 32;
  cfg.train_samples = 2000;
  const train::TrainResult result = train::fit(graph, adam, dataset, cfg);
  std::cout << "  final train accuracy: " << result.final_train_accuracy * 100
            << "%\n";

  // 3. Convert to the inference model (packed ±1 weights, folded BN).
  bnn::Model model = graph.to_inference_model();

  // 4. Evaluate clean accuracy with the vanilla engine.
  const data::Batch test = data::load_batch(dataset, 2000, 500);
  bnn::ReferenceEngine vanilla;
  const double clean = model.evaluate(test, vanilla);
  std::cout << "clean test accuracy: " << clean * 100 << "%\n";

  // 5. Generate fault masks (10% bit-flips on a 64x64 virtual crossbar) for
  //    every crossbar-mapped layer and attach them to a FLIM engine.
  const auto characteristics =
      model.analyze(tensor::FloatTensor(tensor::Shape{1, 1, 28, 28}, 0.5f));
  fault::FaultGenerator generator({64, 64});
  core::Rng rng(/*seed=*/7);

  bnn::FlimEngine flim;
  for (const auto& layer : characteristics.binarized_layers) {
    fault::FaultSpec spec;
    spec.kind = fault::FaultKind::kBitFlip;
    spec.injection_rate = 0.10;
    fault::FaultVectorEntry entry;
    entry.layer_name = layer.layer_name;
    entry.kind = spec.kind;
    entry.mask = generator.generate(spec, rng);
    flim.set_layer_fault(entry);
    std::cout << "  injected 10% bit-flips into " << layer.layer_name << " ("
              << layer.output_elements_per_image() << " XNOR outputs/image)\n";
  }

  // 6. Evaluate under faults.
  const double faulty = model.evaluate(test, flim);
  std::cout << "faulty test accuracy: " << faulty * 100 << "%\n";
  std::cout << "accuracy drop: " << (clean - faulty) * 100 << " points\n";
  return 0;
}

// Model-zoo tour: build each Table-II architecture (untrained) and print its
// structural characteristics -- a fast way to inspect what the scaled
// families look like without any training.
#include <iostream>

#include "bnn/model.hpp"
#include "core/report.hpp"
#include "models/zoo.hpp"

int main() {
  using namespace flim;

  core::Table table({"model", "size_MB", "params", "binary_params", "MACs",
                     "binarized_%", "crossbar_layers"});
  for (const auto& name : models::zoo_model_names()) {
    train::Graph graph = models::build_zoo_graph(name, /*seed=*/1);
    bnn::Model model = graph.to_inference_model();
    const bnn::ModelCharacteristics c =
        model.analyze(tensor::FloatTensor(tensor::Shape{1, 3, 32, 32}, 0.3f));
    table.add(name, core::format_double(c.size_megabytes, 3), c.total_params,
              c.binary_params, c.total_macs,
              core::format_double(c.binarized_percent, 2),
              static_cast<int>(c.binarized_layers.size()));
  }
  core::print_table(std::cout, "FLIM model zoo (scaled Table II families)",
                    table);

  std::cout << "\nbinarized (crossbar-mapped) layers of BinaryResNetE18:\n";
  train::Graph resnet = models::build_zoo_graph("BinaryResNetE18", 1);
  bnn::Model model = resnet.to_inference_model();
  const auto c =
      model.analyze(tensor::FloatTensor(tensor::Shape{1, 3, 32, 32}, 0.3f));
  for (const auto& layer : c.binarized_layers) {
    std::cout << "  " << layer.layer_name << ": "
              << layer.output_elements_per_image() << " XNOR outputs, K = "
              << layer.k << " product terms each\n";
  }
  return 0;
}

// Fault-campaign workflow: the paper's offline mask pipeline.
//
// 1. The Fault Generator draws masks once (the expensive step);
// 2. the noise vectors are extracted into a binary file with metadata;
// 3. the file is reloaded ("reusable for a myriad of experiments") and
//    drives several evaluation campaigns without regeneration.
#include <iostream>

#include "bnn/engine.hpp"
#include "bnn/flim_engine.hpp"
#include "core/rng.hpp"
#include "data/synthetic_mnist.hpp"
#include "fault/fault_generator.hpp"
#include "fault/fault_vector_file.hpp"
#include "models/pretrained.hpp"
#include "models/zoo.hpp"

int main() {
  using namespace flim;

  data::SyntheticMnistOptions data_opts;
  data_opts.size = 2500;
  data::SyntheticMnist dataset(data_opts);

  models::PretrainOptions train_opts;
  train_opts.epochs = 3;
  train_opts.train_samples = 2000;
  const bnn::Model model = models::pretrained_lenet(dataset, train_opts);
  const auto layers =
      model.analyze(tensor::FloatTensor(tensor::Shape{1, 1, 28, 28}, 0.5f))
          .binarized_layers;

  // --- offline: generate masks and extract the noise vectors ---------------
  fault::FaultGenerator generator({40, 10});
  core::Rng rng(2023);
  fault::FaultVectorFile file;
  for (const auto& layer : layers) {
    fault::FaultSpec spec;
    spec.kind = fault::FaultKind::kStuckAt;
    spec.injection_rate = 0.05;
    fault::FaultVectorEntry entry;
    entry.layer_name = layer.layer_name;
    entry.kind = spec.kind;
    entry.mask = generator.generate(spec, rng);
    std::cout << "generated mask for " << layer.layer_name << ": "
              << entry.mask.count_sa0() << " SA0 + " << entry.mask.count_sa1()
              << " SA1 cells on a 40x10 virtual crossbar\n";
    file.add(std::move(entry));
  }
  const std::string path = "fault_vectors_demo.bin";
  file.save(path);
  std::cout << "saved " << file.size() << " fault vectors to " << path << "\n";

  // --- online: reload and run several experiments with the same vectors ----
  const fault::FaultVectorFile reloaded = fault::FaultVectorFile::load(path);
  const data::Batch test = data::load_batch(dataset, 2000, 400);

  bnn::ReferenceEngine vanilla;
  std::cout << "clean accuracy:  " << model.evaluate(test, vanilla) * 100
            << "%\n";

  bnn::FlimEngine faulty(reloaded);
  std::cout << "faulty accuracy: " << model.evaluate(test, faulty) * 100
            << "%  (5% stuck-at from the reloaded vector file)\n";

  // The same file drives a different experiment: only the dense layers.
  bnn::FlimEngine dense_only;
  for (const auto& entry : reloaded.entries()) {
    if (entry.layer_name.rfind("dense", 0) == 0) {
      dense_only.set_layer_fault(entry);
    }
  }
  std::cout << "dense-only:      " << model.evaluate(test, dense_only) * 100
            << "%  (same vectors, dense layers only)\n";
  return 0;
}

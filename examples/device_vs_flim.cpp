// Device-level vs FLIM execution: the cross-validation and the speed gap.
//
// Runs the same binarized layer through (a) the FLIM fast path and (b) the
// X-Fault-style crossbar simulation with identical fault masks, shows the
// results are bit-identical, and reports the runtime ratio -- the essence of
// the paper's Fig 4f argument on a single layer.
#include <chrono>
#include <iostream>

#include "bnn/binary_dense.hpp"
#include "bnn/engine.hpp"
#include "bnn/flim_engine.hpp"
#include "core/rng.hpp"
#include "fault/fault_generator.hpp"
#include "xfault/device_engine.hpp"

int main() {
  using namespace flim;
  using Clock = std::chrono::steady_clock;

  // A binarized dense layer: 128 inputs -> 32 outputs.
  core::Rng rng(3);
  tensor::FloatTensor weights(tensor::Shape{32, 128});
  for (std::int64_t i = 0; i < weights.numel(); ++i) {
    weights[i] = rng.bernoulli(0.5) ? 1.0f : -1.0f;
  }
  bnn::BinaryDense layer("demo", 128, 32, weights);

  tensor::FloatTensor x(tensor::Shape{8, 128});
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    x[i] = rng.bernoulli(0.5) ? 1.0f : -1.0f;
  }

  // Identical product-term fault masks for both engines (gate-grid layout).
  fault::FaultGenerator gen({16, 16});  // 256 gates
  core::Rng mask_rng(7);
  fault::FaultSpec spec;
  spec.kind = fault::FaultKind::kStuckAt;
  spec.injection_rate = 0.08;
  spec.granularity = fault::FaultGranularity::kProductTerm;
  fault::FaultVectorEntry entry;
  entry.layer_name = "demo";
  entry.kind = spec.kind;
  entry.granularity = spec.granularity;
  entry.mask = gen.generate(spec, mask_rng);
  std::cout << "mask: " << entry.mask.count_sa0() << " SA0 + "
            << entry.mask.count_sa1() << " SA1 gates of 256\n";

  bnn::FlimEngine flim;
  flim.set_layer_fault(entry);

  xfault::DeviceEngineConfig cfg;
  cfg.family = lim::LogicFamilyKind::kMagic;
  xfault::DeviceEngine device(cfg);
  device.set_layer_fault(entry);

  bnn::InferenceContext flim_ctx;
  flim_ctx.engine = &flim;
  auto t0 = Clock::now();
  const tensor::FloatTensor flim_out = layer.forward(x, flim_ctx);
  const double flim_s = std::chrono::duration<double>(Clock::now() - t0).count();

  bnn::InferenceContext dev_ctx;
  dev_ctx.engine = &device;
  t0 = Clock::now();
  const tensor::FloatTensor dev_out = layer.forward(x, dev_ctx);
  const double dev_s = std::chrono::duration<double>(Clock::now() - t0).count();

  const bool identical = flim_out == dev_out;
  std::cout << "outputs bit-identical: " << (identical ? "YES" : "NO") << "\n";
  std::cout << "FLIM fast path: " << flim_s * 1e3 << " ms\n";
  std::cout << "device simulation (" << device.stats().xnor_ops
            << " XNOR gate executions): " << dev_s * 1e3 << " ms\n";
  std::cout << "speedup: " << dev_s / flim_s << "x on this single layer -- "
            << "the per-memristor transient simulation is what makes "
            << "X-Fault-style platforms slow.\n";
  const auto stats = device.stats();
  std::cout << "device activity: " << stats.crossbar.set_pulses << " SET + "
            << stats.crossbar.reset_pulses << " RESET pulses, "
            << stats.crossbar.gate_steps << " gate steps, "
            << stats.crossbar.energy_joules * 1e9 << " nJ modeled energy\n";
  return identical ? 0 : 1;
}

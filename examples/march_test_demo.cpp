// March-test demo: offline testing of a memristive crossbar.
//
//   $ ./march_test_demo
//
// Builds a small crossbar, plants one device fault of each kind from the
// ReRAM taxonomy, and runs the four bundled March algorithms against each,
// showing which algorithm catches which fault and what the failure log
// pinpoints. No training involved; runs in milliseconds.
#include <iomanip>
#include <iostream>

#include "lim/crossbar.hpp"
#include "lim/memristor.hpp"
#include "reliability/march.hpp"

int main() {
  using namespace flim;

  std::cout << "March algorithms under test:\n";
  for (const auto& test : reliability::standard_march_tests()) {
    std::cout << "  " << std::left << std::setw(11) << test.name
              << test.notation() << "   (" << test.ops_per_cell()
              << "N)\n";
  }

  // Detection matrix: one fault per run, every algorithm against it.
  std::cout << "\ndetection matrix (single fault at cell (2,3), severity "
               "1.0 / weak 0.3 for read-disturb):\n";
  std::cout << "  " << std::left << std::setw(16) << "fault";
  for (const auto& test : reliability::standard_march_tests()) {
    std::cout << std::setw(12) << test.name;
  }
  std::cout << "\n";

  for (const lim::DeviceFaultKind kind : lim::all_device_fault_kinds()) {
    const double severity =
        kind == lim::DeviceFaultKind::kReadDisturb ? 0.3 : 1.0;
    std::cout << "  " << std::left << std::setw(16) << lim::to_string(kind);
    for (const auto& test : reliability::standard_march_tests()) {
      lim::CrossbarConfig cfg;
      cfg.rows = 8;
      cfg.cols = 8;
      lim::CrossbarArray array(cfg);
      array.inject_device_fault(2, 3, kind, severity);
      const reliability::MarchResult result =
          reliability::run_march(test, array);
      std::cout << std::setw(12) << (result.detected() ? "DETECTED" : "-");
    }
    std::cout << "\n";
  }

  // The failure log localizes the defect for repair/remapping.
  lim::CrossbarConfig cfg;
  cfg.rows = 16;
  cfg.cols = 16;
  lim::CrossbarArray array(cfg);
  array.inject_device_fault(11, 4, lim::DeviceFaultKind::kStuckAt0, 1.0);
  array.inject_device_fault(3, 9, lim::DeviceFaultKind::kSlowReset, 1.0);
  const reliability::MarchResult result =
      reliability::run_march(reliability::march_cminus(), array);
  std::cout << "\nMarch C- failure log on a 16x16 array with two defects:\n";
  for (const reliability::MarchFailure& f : result.failures) {
    std::cout << "  cell (" << f.row << "," << f.col << ") element "
              << f.element_index << " op " << f.op_index << ": expected "
              << f.expected << ", got " << f.got << "\n";
  }
  std::cout << "\ntakeaway: March C- localizes both defects; the cheaper "
               "MATS+ would have shipped the slow-reset cell (see the "
               "matrix above), and parametric drift escapes every offline "
               "test -- use the online monitor for those.\n";
  return 0;
}

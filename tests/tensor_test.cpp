// Unit tests for flim::tensor (shapes, tensors, packed bits, GEMMs, im2col).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/rng.hpp"
#include "tensor/bit_matrix.hpp"
#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"
#include "tensor/ops.hpp"
#include "tensor/shape.hpp"
#include "tensor/tensor.hpp"
#include "tensor/xnor_gemm.hpp"

namespace flim::tensor {
namespace {

FloatTensor random_pm1(std::int64_t rows, std::int64_t cols, std::uint64_t seed) {
  core::Rng rng(seed);
  FloatTensor t(Shape{rows, cols});
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = rng.bernoulli(0.5) ? 1.0f : -1.0f;
  }
  return t;
}

FloatTensor random_float(const Shape& shape, std::uint64_t seed) {
  core::Rng rng(seed);
  FloatTensor t(shape);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.normal());
  }
  return t;
}

// Naive float reference for the binary dot product.
std::int32_t naive_pm1_dot(const FloatTensor& a, std::int64_t ra,
                           const FloatTensor& b, std::int64_t rb) {
  std::int32_t acc = 0;
  const std::int64_t k = a.shape()[1];
  for (std::int64_t i = 0; i < k; ++i) {
    acc += static_cast<std::int32_t>(a.at2(ra, i) * b.at2(rb, i));
  }
  return acc;
}

TEST(Shape, BasicProperties) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s.dim(1), 3);
  EXPECT_EQ(s.strides(), (std::vector<std::int64_t>{12, 4, 1}));
  EXPECT_EQ(s.to_string(), "[2, 3, 4]");
  EXPECT_EQ(s, (Shape{2, 3, 4}));
  EXPECT_NE(s, (Shape{2, 3}));
}

TEST(Shape, RejectsNegativeDims) {
  EXPECT_THROW(Shape({-1, 2}), std::invalid_argument);
}

TEST(Tensor, FillAndAccess) {
  FloatTensor t(Shape{2, 3}, 1.5f);
  EXPECT_EQ(t.numel(), 6);
  EXPECT_FLOAT_EQ(t.at2(1, 2), 1.5f);
  t.at2(0, 1) = 2.0f;
  EXPECT_FLOAT_EQ(t[1], 2.0f);
}

TEST(Tensor, ReshapePreservesData) {
  FloatTensor t(Shape{2, 6});
  for (std::int64_t i = 0; i < 12; ++i) t[i] = static_cast<float>(i);
  const FloatTensor r = t.reshaped(Shape{3, 4});
  EXPECT_FLOAT_EQ(r.at2(2, 3), 11.0f);
  EXPECT_THROW(t.reshaped(Shape{5, 5}), std::invalid_argument);
}

TEST(Tensor, At4Indexing) {
  FloatTensor t(Shape{2, 3, 4, 5});
  t.at4(1, 2, 3, 4) = 9.0f;
  EXPECT_FLOAT_EQ(t[t.numel() - 1], 9.0f);
}

TEST(BitMatrix, SetGetFlip) {
  BitMatrix m(3, 70);  // forces multi-word rows with a tail
  EXPECT_EQ(m.get(0, 0), -1);
  m.set(0, 0, 1);
  EXPECT_EQ(m.get(0, 0), 1);
  m.set(2, 69, 1);
  EXPECT_EQ(m.get(2, 69), 1);
  m.flip(2, 69);
  EXPECT_EQ(m.get(2, 69), -1);
  EXPECT_EQ(m.words_per_row(), 2);
}

TEST(BitMatrix, FloatRoundTrip) {
  const FloatTensor f = random_pm1(5, 130, 3);
  const BitMatrix m = BitMatrix::from_float(f);
  EXPECT_EQ(m.to_float(), f);
}

TEST(BitMatrix, SignZeroIsPlusOne) {
  FloatTensor f(Shape{1, 3});
  f[0] = 0.0f;
  f[1] = -0.1f;
  f[2] = 0.1f;
  const BitMatrix m = BitMatrix::from_float(f);
  EXPECT_EQ(m.get(0, 0), 1);
  EXPECT_EQ(m.get(0, 1), -1);
  EXPECT_EQ(m.get(0, 2), 1);
}

TEST(BitMatrix, DotRowMatchesNaive) {
  const FloatTensor a = random_pm1(4, 200, 11);
  const FloatTensor b = random_pm1(3, 200, 12);
  const BitMatrix pa = BitMatrix::from_float(a);
  const BitMatrix pb = BitMatrix::from_float(b);
  for (std::int64_t i = 0; i < 4; ++i) {
    for (std::int64_t j = 0; j < 3; ++j) {
      EXPECT_EQ(pa.dot_row(i, pb, j), naive_pm1_dot(a, i, b, j));
    }
  }
}

// Property sweep: XNOR GEMM equals the float reference for many K values,
// especially around word boundaries.
class XnorGemmSizes : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(XnorGemmSizes, MatchesFloatReference) {
  const std::int64_t k = GetParam();
  const FloatTensor a = random_pm1(7, k, 100 + static_cast<std::uint64_t>(k));
  const FloatTensor w = random_pm1(5, k, 200 + static_cast<std::uint64_t>(k));
  IntTensor out;
  xnor_gemm(BitMatrix::from_float(a), BitMatrix::from_float(w), out);
  for (std::int64_t i = 0; i < 7; ++i) {
    for (std::int64_t j = 0; j < 5; ++j) {
      EXPECT_EQ(out.at2(i, j), naive_pm1_dot(a, i, w, j))
          << "k=" << k << " i=" << i << " j=" << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(WordBoundaries, XnorGemmSizes,
                         ::testing::Values(1, 2, 7, 31, 63, 64, 65, 100, 127,
                                           128, 129, 200, 256, 300));

TEST(XnorGemm, RowRangeComputesOnlyRequestedRows) {
  const FloatTensor a = random_pm1(6, 50, 1);
  const FloatTensor w = random_pm1(4, 50, 2);
  const BitMatrix pa = BitMatrix::from_float(a);
  const BitMatrix pw = BitMatrix::from_float(w);
  IntTensor full;
  xnor_gemm(pa, pw, full);
  IntTensor partial(Shape{6, 4}, -999);
  xnor_gemm_rows(pa, pw, partial, 2, 5);
  for (std::int64_t i = 0; i < 6; ++i) {
    for (std::int64_t j = 0; j < 4; ++j) {
      if (i >= 2 && i < 5) {
        EXPECT_EQ(partial.at2(i, j), full.at2(i, j));
      } else {
        EXPECT_EQ(partial.at2(i, j), -999);
      }
    }
  }
}

TEST(XnorGemm, TermFlipNegatesSingleProduct) {
  // One flipped product term changes the dot product by ±2.
  const std::int64_t k = 70;
  const FloatTensor a = random_pm1(1, k, 5);
  const FloatTensor w = random_pm1(1, k, 6);
  const BitMatrix pa = BitMatrix::from_float(a);
  const BitMatrix pw = BitMatrix::from_float(w);
  IntTensor clean;
  xnor_gemm(pa, pw, clean);

  BitMatrix flip(1, k), sa0(1, k), sa1(1, k);
  flip.set_bit(0, 68, true);
  IntTensor faulty;
  xnor_gemm_term_faults(pa, pw, flip, sa0, sa1, faulty);
  const std::int32_t product =
      static_cast<std::int32_t>(a.at2(0, 68) * w.at2(0, 68));
  EXPECT_EQ(faulty.at2(0, 0), clean.at2(0, 0) - 2 * product);
}

TEST(XnorGemm, TermStuckAtForcesProduct) {
  const std::int64_t k = 40;
  const FloatTensor a = random_pm1(2, k, 7);
  const FloatTensor w = random_pm1(2, k, 8);
  const BitMatrix pa = BitMatrix::from_float(a);
  const BitMatrix pw = BitMatrix::from_float(w);

  // All terms stuck at 1 => dot = +k; all stuck at 0 => dot = -k.
  BitMatrix none(2, k), all(2, k);
  for (std::int64_t c = 0; c < k; ++c) {
    all.set_bit(0, c, true);
    all.set_bit(1, c, true);
  }
  IntTensor out;
  xnor_gemm_term_faults(pa, pw, none, none, all, out);
  EXPECT_EQ(out.at2(0, 0), k);
  xnor_gemm_term_faults(pa, pw, none, all, none, out);
  EXPECT_EQ(out.at2(1, 1), -k);
}

TEST(XnorGemm, StuckAtDominatesFlip) {
  const std::int64_t k = 10;
  const FloatTensor a = random_pm1(1, k, 9);
  const FloatTensor w = random_pm1(1, k, 10);
  BitMatrix flip(1, k), sa1(1, k), none(1, k);
  for (std::int64_t c = 0; c < k; ++c) {
    flip.set_bit(0, c, true);
    sa1.set_bit(0, c, true);
  }
  IntTensor out;
  xnor_gemm_term_faults(BitMatrix::from_float(a), BitMatrix::from_float(w),
                        flip, none, sa1, out);
  EXPECT_EQ(out.at2(0, 0), k);  // stuck-at-1 wins over flips
}

TEST(Gemm, MatchesManualSmallCase) {
  FloatTensor a(Shape{2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  FloatTensor b(Shape{3, 2}, std::vector<float>{7, 8, 9, 10, 11, 12});
  FloatTensor c;
  gemm(a, b, c);
  EXPECT_FLOAT_EQ(c.at2(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at2(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at2(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at2(1, 1), 154.0f);
}

TEST(Gemm, TransposedVariantsAgree) {
  const FloatTensor a = random_float(Shape{4, 6}, 21);
  const FloatTensor b = random_float(Shape{6, 5}, 22);
  FloatTensor c_ref;
  gemm(a, b, c_ref);

  // gemm_at: C = (A^T)^T * B where we pass A^T.
  FloatTensor at(Shape{6, 4});
  for (std::int64_t i = 0; i < 4; ++i) {
    for (std::int64_t j = 0; j < 6; ++j) at.at2(j, i) = a.at2(i, j);
  }
  FloatTensor c_at;
  gemm_at(at, b, c_at);
  for (std::int64_t i = 0; i < c_ref.numel(); ++i) {
    EXPECT_NEAR(c_at[i], c_ref[i], 1e-4f);
  }

  // gemm_bt: C = A * (B^T)^T where we pass B^T.
  FloatTensor bt(Shape{5, 6});
  for (std::int64_t i = 0; i < 6; ++i) {
    for (std::int64_t j = 0; j < 5; ++j) bt.at2(j, i) = b.at2(i, j);
  }
  FloatTensor c_bt;
  gemm_bt(a, bt, c_bt);
  for (std::int64_t i = 0; i < c_ref.numel(); ++i) {
    EXPECT_NEAR(c_bt[i], c_ref[i], 1e-4f);
  }
}

TEST(Gemm, AccumulateAdds) {
  const FloatTensor a = random_float(Shape{3, 3}, 31);
  const FloatTensor b = random_float(Shape{3, 3}, 32);
  FloatTensor c1;
  gemm(a, b, c1);
  FloatTensor c2 = c1;
  gemm(a, b, c2, /*accumulate=*/true);
  for (std::int64_t i = 0; i < c1.numel(); ++i) {
    EXPECT_NEAR(c2[i], 2.0f * c1[i], 1e-4f);
  }
}

TEST(Im2col, ExtractsPatchesWithPadding) {
  // 1x1x3x3 input, 3x3 kernel, pad 1 => 9 patches of 9 elements.
  FloatTensor x(Shape{1, 1, 3, 3});
  for (std::int64_t i = 0; i < 9; ++i) x[i] = static_cast<float>(i + 1);
  ConvGeometry g{1, 3, 3, 3, 3, 1, 1};
  const FloatTensor p = im2col(x, g, 0.0f);
  EXPECT_EQ(p.shape(), (Shape{9, 9}));
  // Center patch (output position 1,1) sees the full input.
  for (std::int64_t i = 0; i < 9; ++i) {
    EXPECT_FLOAT_EQ(p.at2(4, i), static_cast<float>(i + 1));
  }
  // Top-left patch: first row and column padded.
  EXPECT_FLOAT_EQ(p.at2(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(p.at2(0, 4), 1.0f);
}

TEST(Im2col, BinaryPaddingIsMinusOne) {
  FloatTensor x(Shape{1, 1, 2, 2}, 1.0f);  // all +1
  ConvGeometry g{1, 2, 2, 3, 3, 1, 1};
  const BitMatrix p = im2col_binary(x, g);
  EXPECT_EQ(p.rows(), 4);
  EXPECT_EQ(p.cols(), 9);
  // Position (0,0): top-left corner; first patch element is padding => -1.
  EXPECT_EQ(p.get(0, 0), -1);
  // Center element of the first patch is the input pixel (0,0) => +1.
  EXPECT_EQ(p.get(0, 4), 1);
}

TEST(Im2col, BinaryMatchesFloatSign) {
  const FloatTensor x = random_float(Shape{2, 3, 8, 8}, 41);
  ConvGeometry g{3, 8, 8, 3, 3, 1, 1};
  const BitMatrix pb = im2col_binary(x, g);
  const FloatTensor pf = im2col(x, g, -1.0f);  // pad -1 like the binary path
  for (std::int64_t r = 0; r < pb.rows(); ++r) {
    for (std::int64_t c = 0; c < pb.cols(); ++c) {
      EXPECT_EQ(pb.get(r, c), pf.at2(r, c) >= 0.0f ? 1 : -1);
    }
  }
}

TEST(Im2col, Col2imIsAdjoint) {
  // <im2col(x), y> == <x, col2im(y)> -- the defining adjoint property.
  const FloatTensor x = random_float(Shape{1, 2, 5, 5}, 51);
  ConvGeometry g{2, 5, 5, 3, 3, 2, 1};
  const FloatTensor ix = im2col(x, g, 0.0f);
  const FloatTensor y = random_float(ix.shape(), 52);
  const FloatTensor cy = col2im(y, 1, g);

  double lhs = 0.0, rhs = 0.0;
  for (std::int64_t i = 0; i < ix.numel(); ++i) lhs += ix[i] * y[i];
  for (std::int64_t i = 0; i < x.numel(); ++i) rhs += x[i] * cy[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Ops, SignConvention) {
  FloatTensor x(Shape{1, 3}, std::vector<float>{-0.5f, 0.0f, 0.5f});
  const FloatTensor s = sign(x);
  EXPECT_FLOAT_EQ(s[0], -1.0f);
  EXPECT_FLOAT_EQ(s[1], 1.0f);
  EXPECT_FLOAT_EQ(s[2], 1.0f);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  const FloatTensor logits = random_float(Shape{4, 10}, 61);
  const FloatTensor p = softmax_rows(logits);
  for (std::int64_t r = 0; r < 4; ++r) {
    float sum = 0.0f;
    for (std::int64_t c = 0; c < 10; ++c) {
      EXPECT_GT(p.at2(r, c), 0.0f);
      sum += p.at2(r, c);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(Ops, SoftmaxIsShiftInvariantAndStable) {
  FloatTensor logits(Shape{1, 3}, std::vector<float>{1000.0f, 1001.0f, 1002.0f});
  const FloatTensor p = softmax_rows(logits);
  EXPECT_FALSE(std::isnan(p[0]));
  EXPECT_LT(p[0], p[1]);
  EXPECT_LT(p[1], p[2]);
}

TEST(Ops, ArgmaxAndAccuracy) {
  FloatTensor logits(Shape{3, 3},
                     std::vector<float>{1, 5, 2, 9, 0, 1, 2, 2, 3});
  const auto am = argmax_rows(logits);
  EXPECT_EQ(am, (std::vector<std::int64_t>{1, 0, 2}));
  EXPECT_DOUBLE_EQ(accuracy(logits, {1, 0, 2}), 1.0);
  EXPECT_NEAR(accuracy(logits, {1, 1, 1}), 1.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace flim::tensor

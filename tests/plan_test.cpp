// Compiled-forward-plan tests: plan-vs-legacy bit-equivalence across the
// model zoo and every execution backend, workspace-reuse determinism, and
// serial-vs-pooled intra-GEMM sharding identity.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bnn/flim_engine.hpp"
#include "bnn/model.hpp"
#include "bnn/plan.hpp"
#include "core/rng.hpp"
#include "core/thread_pool.hpp"
#include "exp/engine_factory.hpp"
#include "fault/fault_generator.hpp"
#include "fault/fault_vector_file.hpp"
#include "models/zoo.hpp"
#include "tensor/workspace.hpp"
#include "tensor/xnor_gemm.hpp"
#include "train/graph.hpp"
#include "xfault/device_engine.hpp"

namespace flim::bnn {
namespace {

using tensor::FloatTensor;
using tensor::Shape;

FloatTensor deterministic_input(Shape shape, std::uint64_t seed) {
  FloatTensor x(std::move(shape));
  core::Rng rng(seed);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(rng.uniform_double() * 2.0 - 1.0);
  }
  return x;
}

/// Draws one fault-vector file covering every binarized layer of `model`.
fault::FaultVectorFile realize_vectors(const Model& model,
                                       const FloatTensor& sample,
                                       const fault::FaultSpec& spec,
                                       std::uint64_t seed) {
  const auto layers = model.analyze(sample).binarized_layers;
  fault::FaultGenerator gen(lim::CrossbarGeometry{16, 16});
  core::Rng rng(seed);
  fault::FaultVectorFile file;
  for (const LayerWorkload& layer : layers) {
    fault::FaultVectorEntry entry;
    entry.layer_name = layer.layer_name;
    entry.kind = spec.kind;
    entry.granularity = spec.granularity;
    entry.dynamic_period = spec.dynamic_period;
    entry.mask = gen.generate(spec, rng);
    file.add(std::move(entry));
  }
  return file;
}

void expect_equal_logits(const FloatTensor& legacy, const FloatTensor& plan,
                         const std::string& what) {
  ASSERT_EQ(legacy.shape(), plan.shape()) << what;
  for (std::int64_t i = 0; i < legacy.numel(); ++i) {
    ASSERT_EQ(legacy[i], plan[i]) << what << " logit " << i;
  }
}

/// Runs legacy forward and plan execute with independently constructed (but
/// identically configured) engines and requires byte-identical logits.
void expect_plan_matches_legacy(
    const Model& model, const FloatTensor& x,
    const std::function<std::unique_ptr<XnorExecutionEngine>()>& make,
    const std::string& what) {
  const auto legacy_engine = make();
  const FloatTensor legacy = model.forward(x, *legacy_engine);

  const ForwardPlan plan(model, x.shape());
  tensor::Workspace ws;
  const auto plan_engine = make();
  const FloatTensor& planned = plan.execute(x, ws, *plan_engine);
  expect_equal_logits(legacy, planned, what);
}

class PlanZooModels : public ::testing::TestWithParam<std::string> {};

TEST_P(PlanZooModels, ReferenceBitEquivalent) {
  Model model = models::build_zoo_graph(GetParam(), 3).to_inference_model();
  const FloatTensor x = deterministic_input(Shape{2, 3, 32, 32}, 11);
  expect_plan_matches_legacy(
      model, x, [] { return std::make_unique<ReferenceEngine>(); },
      GetParam() + "/reference");
}

TEST_P(PlanZooModels, FlimBitEquivalent) {
  Model model = models::build_zoo_graph(GetParam(), 5).to_inference_model();
  const FloatTensor sample = deterministic_input(Shape{1, 3, 32, 32}, 7);
  const FloatTensor x = deterministic_input(Shape{2, 3, 32, 32}, 13);

  fault::FaultSpec spec;
  spec.kind = fault::FaultKind::kBitFlip;
  spec.injection_rate = 0.1;
  const fault::FaultVectorFile vectors =
      realize_vectors(model, sample, spec, 21);
  expect_plan_matches_legacy(
      model, x,
      [&] { return std::make_unique<FlimEngine>(vectors); },
      GetParam() + "/flim-bitflip");

  // Dynamic faults exercise the per-image execution counters: the plan path
  // must call the engine in exactly the legacy order.
  fault::FaultSpec dynamic = spec;
  dynamic.kind = fault::FaultKind::kDynamic;
  dynamic.dynamic_period = 2;
  const fault::FaultVectorFile dynamic_vectors =
      realize_vectors(model, sample, dynamic, 22);
  expect_plan_matches_legacy(
      model, x,
      [&] { return std::make_unique<FlimEngine>(dynamic_vectors); },
      GetParam() + "/flim-dynamic");
}

TEST_P(PlanZooModels, TmrBitEquivalent) {
  Model model = models::build_zoo_graph(GetParam(), 6).to_inference_model();
  const FloatTensor sample = deterministic_input(Shape{1, 3, 32, 32}, 7);
  const FloatTensor x = deterministic_input(Shape{2, 3, 32, 32}, 17);

  fault::FaultSpec spec;
  spec.kind = fault::FaultKind::kStuckAt;
  spec.injection_rate = 0.1;
  const fault::FaultVectorFile vectors =
      realize_vectors(model, sample, spec, 23);
  exp::EngineSpec engine_spec;
  engine_spec.backend = exp::Backend::kTmr;
  engine_spec.tmr_replicas = 3;
  expect_plan_matches_legacy(
      model, x,
      [&] { return exp::make_engine(engine_spec, vectors); },
      GetParam() + "/tmr");
}

TEST_P(PlanZooModels, DeviceBitEquivalent) {
  Model model = models::build_zoo_graph(GetParam(), 8).to_inference_model();
  const FloatTensor sample = deterministic_input(Shape{1, 3, 32, 32}, 7);
  // One image: the gate-by-gate device simulation is the slow baseline.
  const FloatTensor x = deterministic_input(Shape{1, 3, 32, 32}, 19);

  fault::FaultSpec spec;
  spec.kind = fault::FaultKind::kBitFlip;
  spec.injection_rate = 0.05;
  const fault::FaultVectorFile vectors =
      realize_vectors(model, sample, spec, 29);
  xfault::DeviceEngineConfig cfg;
  cfg.crossbar.rows = 16;
  cfg.crossbar.cols = 64;
  expect_plan_matches_legacy(
      model, x,
      [&] { return std::make_unique<xfault::DeviceEngine>(cfg, vectors); },
      GetParam() + "/device");
}

INSTANTIATE_TEST_SUITE_P(AllNine, PlanZooModels,
                         ::testing::ValuesIn(models::zoo_model_names()));

TEST(Plan, LenetProductTermDynamicBitEquivalent) {
  Model model = models::build_lenet_binary(2).to_inference_model();
  const FloatTensor sample = deterministic_input(Shape{1, 1, 28, 28}, 3);
  const FloatTensor x = deterministic_input(Shape{4, 1, 28, 28}, 31);

  fault::FaultSpec spec;
  spec.kind = fault::FaultKind::kDynamic;
  spec.dynamic_period = 2;
  spec.injection_rate = 0.15;
  spec.granularity = fault::FaultGranularity::kProductTerm;
  const fault::FaultVectorFile vectors =
      realize_vectors(model, sample, spec, 37);
  expect_plan_matches_legacy(
      model, x,
      [&] { return std::make_unique<FlimEngine>(vectors); },
      "lenet/flim-product-term-dynamic");
}

TEST(Plan, WorkspaceReuseIsDeterministicAndAllocationFree) {
  Model model =
      models::build_zoo_graph("BinaryAlexNet", 4).to_inference_model();
  const FloatTensor x = deterministic_input(Shape{2, 3, 32, 32}, 41);
  const ForwardPlan plan(model, x.shape());

  tensor::Workspace ws;
  ReferenceEngine engine;
  const FloatTensor first = plan.execute(x, ws, engine);  // copy
  const std::uint64_t allocations_after_first = ws.allocation_count();

  const FloatTensor& second = plan.execute(x, ws, engine);
  expect_equal_logits(first, second, "workspace reuse");
  EXPECT_EQ(ws.allocation_count(), allocations_after_first)
      << "steady-state execution must not allocate";

  const FloatTensor& third = plan.execute(x, ws, engine);
  expect_equal_logits(first, third, "workspace reuse (third pass)");
  EXPECT_EQ(ws.allocation_count(), allocations_after_first);
}

TEST(Plan, RejectsInputShapeMismatch) {
  Model model = models::build_lenet_binary(2).to_inference_model();
  const ForwardPlan plan(model, Shape{2, 1, 28, 28});
  tensor::Workspace ws;
  ReferenceEngine engine;
  const FloatTensor wrong = deterministic_input(Shape{3, 1, 28, 28}, 5);
  EXPECT_THROW(plan.execute(wrong, ws, engine), std::invalid_argument);
}

TEST(Plan, SharedPlanSeparateWorkspacesAgree) {
  Model model = models::build_lenet_binary(6).to_inference_model();
  const FloatTensor x = deterministic_input(Shape{3, 1, 28, 28}, 43);
  const ForwardPlan plan(model, x.shape());

  tensor::Workspace ws_a, ws_b;
  ReferenceEngine engine_a, engine_b;
  const FloatTensor& a = plan.execute(x, ws_a, engine_a);
  const FloatTensor b = a;  // copy before the other arena executes
  const FloatTensor& c = plan.execute(x, ws_b, engine_b);
  expect_equal_logits(b, c, "per-worker workspaces");
}

TEST(Im2colVariants, PackedAndGatherMatchLegacyAcrossGeometries) {
  struct Case {
    std::int64_t c, h, w, k, stride, pad;
  };
  const Case cases[] = {
      {1, 28, 28, 5, 1, 0},  // LeNet-ish
      {3, 32, 32, 3, 1, 1},  // zoo stem
      {64, 16, 16, 3, 1, 1},
      {8, 33, 33, 5, 2, 2},   // odd extent, stride 2
      {2, 9, 80, 7, 3, 3},    // padded width > 64: general packed path
      {4, 12, 12, 1, 2, 0},   // 1x1 kernel, stride 2
  };
  core::Rng rng(71);
  for (const Case& tc : cases) {
    tensor::ConvGeometry g;
    g.in_channels = tc.c;
    g.in_h = tc.h;
    g.in_w = tc.w;
    g.kernel_h = g.kernel_w = tc.k;
    g.stride = tc.stride;
    g.pad = tc.pad;
    tensor::FloatTensor input(Shape{2, tc.c, tc.h, tc.w});
    for (std::int64_t i = 0; i < input.numel(); ++i) {
      input[i] = static_cast<float>(rng.uniform_double() * 2.0 - 1.0);
    }

    const tensor::BitMatrix legacy = tensor::im2col_binary(input, g);

    tensor::BitMatrix packed(2 * tc.c * tc.h, tc.w + 2 * tc.pad);
    tensor::BitMatrix out(legacy.rows(), legacy.cols());
    tensor::im2col_binary_packed(input, g, packed, out);
    EXPECT_EQ(legacy, out) << "packed, k=" << tc.k << " w=" << tc.w;

    tensor::BitMatrix gathered(legacy.rows(), legacy.cols());
    tensor::im2col_binary_gather(input, g, tensor::make_im2col_gather(g),
                                 gathered);
    EXPECT_EQ(legacy, gathered) << "gather, k=" << tc.k << " w=" << tc.w;
  }
}

tensor::BitMatrix random_bits(std::int64_t rows, std::int64_t cols,
                              std::uint64_t seed) {
  tensor::BitMatrix m(rows, cols);
  core::Rng rng(seed);
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      m.set_bit(r, c, rng.bernoulli(0.5));
    }
  }
  return m;
}

TEST(PooledGemm, SerialAndShardedBitIdentical) {
  const tensor::BitMatrix a = random_bits(301, 433, 51);
  const tensor::BitMatrix w = random_bits(37, 433, 52);

  tensor::IntTensor serial, pooled;
  tensor::xnor_gemm(a, w, serial);
  core::ThreadPool pool(4);
  tensor::xnor_gemm(a, w, pooled, &pool);
  EXPECT_EQ(serial, pooled);
}

TEST(PooledGemm, TermFaultsSerialAndShardedBitIdentical) {
  const tensor::BitMatrix a = random_bits(257, 195, 53);
  const tensor::BitMatrix w = random_bits(41, 195, 54);
  const tensor::BitMatrix flip = random_bits(41, 195, 55);
  const tensor::BitMatrix sa0 = random_bits(41, 195, 56);
  const tensor::BitMatrix sa1 = random_bits(41, 195, 57);

  tensor::IntTensor serial, pooled;
  tensor::xnor_gemm_term_faults(a, w, flip, sa0, sa1, serial);
  core::ThreadPool pool(3);
  tensor::xnor_gemm_term_faults(a, w, flip, sa0, sa1, pooled, &pool);
  EXPECT_EQ(serial, pooled);
}

TEST(PooledGemm, EngineShardingMatchesSerialInference) {
  Model model = models::build_lenet_binary(9).to_inference_model();
  const FloatTensor x = deterministic_input(Shape{2, 1, 28, 28}, 61);
  const ForwardPlan plan(model, x.shape());

  tensor::Workspace ws_serial, ws_pooled;
  ReferenceEngine serial_engine, pooled_engine;
  const FloatTensor serial = plan.execute(x, ws_serial, serial_engine);
  core::ThreadPool pool(4);
  const FloatTensor& pooled =
      plan.execute(x, ws_pooled, pooled_engine, &pool);
  expect_equal_logits(serial, pooled, "engine sharding");
}

TEST(PooledGemm, NestedUseOfOnePoolRunsInlineInsteadOfDeadlocking) {
  // Batch-level parallel_for whose tasks shard their GEMMs on the same
  // pool: the nested call must degrade to inline execution.
  const tensor::BitMatrix a = random_bits(130, 96, 65);
  const tensor::BitMatrix w = random_bits(8, 96, 66);
  tensor::IntTensor serial;
  tensor::xnor_gemm(a, w, serial);

  core::ThreadPool pool(2);
  std::vector<tensor::IntTensor> outs(4);
  pool.parallel_for(outs.size(), [&](std::size_t i) {
    tensor::xnor_gemm(a, w, outs[i], &pool);
  });
  for (const auto& out : outs) EXPECT_EQ(serial, out);
}

TEST(FlimEngineValidation, CleanPathRejectsBatchMismatch) {
  // Regression: the clean early-return used to skip the batch-consistency
  // checks the faulty path enforces.
  FlimEngine engine;  // no fault entries -> clean path
  const tensor::BitMatrix a = random_bits(10, 8, 63);
  const tensor::BitMatrix w = random_bits(4, 8, 64);
  tensor::IntTensor out;
  EXPECT_THROW(engine.execute("layer", a, w, 0, out), std::invalid_argument);
  EXPECT_THROW(engine.execute("layer", a, w, 3, out), std::invalid_argument);
  // A consistent batch still runs clean.
  engine.execute("layer", a, w, 5, out);
  EXPECT_EQ(out.shape(), (Shape{10, 4}));
}

}  // namespace
}  // namespace flim::bnn

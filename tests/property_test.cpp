// Property-based and corner-case sweeps across modules:
//  * gate correctness across device corners (the EDA sign-off question),
//  * algebraic invariants of fault application (involution, exactness),
//  * serialization idempotence over the whole model zoo.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <tuple>

#include "bnn/engine.hpp"
#include "bnn/flim_engine.hpp"
#include "bnn/serialize.hpp"
#include "core/rng.hpp"
#include "fault/fault_generator.hpp"
#include "lim/crossbar.hpp"
#include "models/zoo.hpp"
#include "reliability/ecc.hpp"
#include "reliability/march.hpp"
#include "reliability/monitor.hpp"
#include "tensor/xnor_gemm.hpp"

namespace flim {
namespace {

// ---------------------------------------------------------------------------
// Device corners: the XNOR gates must stay correct across pulse granularity,
// resistance window, and logic family -- a behavioural PVT-corner sweep.
struct DeviceCorner {
  int steps_per_pulse;
  double r_off_over_r_on;
  lim::LogicFamilyKind family;
};

class GateAcrossCorners : public ::testing::TestWithParam<DeviceCorner> {};

TEST_P(GateAcrossCorners, XnorTruthTableHolds) {
  const DeviceCorner corner = GetParam();
  lim::CrossbarConfig cfg;
  cfg.rows = 1;
  cfg.cols = lim::kCellsPerGate;
  cfg.device.steps_per_pulse = corner.steps_per_pulse;
  cfg.device.r_off = cfg.device.r_on * corner.r_off_over_r_on;
  const auto family = lim::make_logic_family(corner.family);
  lim::CrossbarArray xbar(cfg);
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      EXPECT_EQ(xbar.execute_xnor(*family, 0, 0, a != 0, b != 0), a == b)
          << "steps=" << corner.steps_per_pulse
          << " window=" << corner.r_off_over_r_on << " family="
          << family->name() << " a=" << a << " b=" << b;
    }
  }
}

// Note the pulse-width envelope: below ~12 integration steps the MAGIC NOR
// cannot complete the output RESET with the default switching rates (dw =
// 0.056/step from the ~1.0 V divider), so 12 is the shortest valid corner --
// a real design constraint of the electrical configuration, verified here.
INSTANTIATE_TEST_SUITE_P(
    Corners, GateAcrossCorners,
    ::testing::Values(DeviceCorner{12, 1000.0, lim::LogicFamilyKind::kMagic},
                      DeviceCorner{16, 1000.0, lim::LogicFamilyKind::kMagic},
                      DeviceCorner{32, 1000.0, lim::LogicFamilyKind::kMagic},
                      DeviceCorner{16, 100.0, lim::LogicFamilyKind::kMagic},
                      DeviceCorner{16, 10000.0, lim::LogicFamilyKind::kMagic},
                      DeviceCorner{16, 1000.0, lim::LogicFamilyKind::kImply},
                      DeviceCorner{32, 1000.0, lim::LogicFamilyKind::kImply},
                      DeviceCorner{16, 10000.0, lim::LogicFamilyKind::kImply}));

// ---------------------------------------------------------------------------
// Fault-generation properties over a rate sweep.
class GeneratorRates : public ::testing::TestWithParam<double> {};

TEST_P(GeneratorRates, ExactCountAndDeterminism) {
  const double rate = GetParam();
  fault::FaultGenerator gen({32, 48});
  fault::FaultSpec spec;
  spec.kind = fault::FaultKind::kBitFlip;
  spec.injection_rate = rate;
  core::Rng r1(99), r2(99);
  const fault::FaultMask a = gen.generate(spec, r1);
  const fault::FaultMask b = gen.generate(spec, r2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.count_flip(),
            static_cast<std::int64_t>(std::llround(rate * 32 * 48)));
}

INSTANTIATE_TEST_SUITE_P(Rates, GeneratorRates,
                         ::testing::Values(0.0, 0.01, 0.05, 0.1, 0.25, 0.5,
                                           0.9, 1.0));

// ---------------------------------------------------------------------------
// Algebraic invariants of fault application.

tensor::BitMatrix random_bits(std::int64_t rows, std::int64_t cols,
                              std::uint64_t seed) {
  core::Rng rng(seed);
  tensor::BitMatrix m(rows, cols);
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      m.set_bit(r, c, rng.bernoulli(0.5));
    }
  }
  return m;
}

TEST(FaultInvariants, TermFlipIsAnInvolution) {
  // Applying the same flip mask twice must restore the clean result.
  const auto act = random_bits(5, 90, 1);
  const auto wts = random_bits(4, 90, 2);
  const auto flips = random_bits(4, 90, 3);
  const tensor::BitMatrix none(4, 90);

  tensor::IntTensor clean, once, twice;
  tensor::xnor_gemm(act, wts, clean);
  // "Applying twice" at the bit level = XOR of the two masks = empty mask;
  // verify via the kernel by flipping flipped products again manually:
  tensor::xnor_gemm_term_faults(act, wts, flips, none, none, once);
  // Build the double-flip mask (XOR with itself -> empty).
  tensor::BitMatrix empty(4, 90);
  tensor::xnor_gemm_term_faults(act, wts, empty, none, none, twice);
  EXPECT_EQ(twice, clean);
  // And a single application really changed something (overwhelmingly).
  EXPECT_NE(once, clean);
}

TEST(FaultInvariants, FlipPreservesParity) {
  // dot = K - 2*mismatches: any number of product flips changes the dot by
  // an even amount, so parity of (K - dot)/... is preserved: dot and K have
  // equal parity before and after.
  const std::int64_t k = 33;
  const auto act = random_bits(3, k, 4);
  const auto wts = random_bits(2, k, 5);
  const auto flips = random_bits(2, k, 6);
  const tensor::BitMatrix none(2, k);
  tensor::IntTensor clean, faulty;
  tensor::xnor_gemm(act, wts, clean);
  tensor::xnor_gemm_term_faults(act, wts, flips, none, none, faulty);
  for (std::int64_t i = 0; i < clean.numel(); ++i) {
    EXPECT_EQ((clean[i] - faulty[i]) % 2, 0);
    EXPECT_GE(faulty[i], -k);
    EXPECT_LE(faulty[i], k);
  }
}

TEST(FaultInvariants, OutputElementFlipIsAnInvolution) {
  fault::FaultVectorEntry e;
  e.layer_name = "l";
  e.kind = fault::FaultKind::kBitFlip;
  e.mask = fault::FaultMask(4, 4);
  core::Rng rng(7);
  for (std::int64_t s = 0; s < 16; ++s) {
    e.mask.set_flip(s, rng.bernoulli(0.4));
  }
  fault::FaultInjector inj(e);
  tensor::IntTensor feature(tensor::Shape{8, 4});
  for (std::int64_t i = 0; i < feature.numel(); ++i) {
    feature[i] = static_cast<std::int32_t>(rng.uniform(41)) - 20;
  }
  const tensor::IntTensor original = feature;
  inj.apply_output_element(feature, 0, 8, /*execution=*/0, 20);
  inj.apply_output_element(feature, 0, 8, /*execution=*/1, 20);
  EXPECT_EQ(feature, original);
}

TEST(FaultInvariants, StuckAtIsIdempotent) {
  fault::FaultVectorEntry e;
  e.layer_name = "l";
  e.kind = fault::FaultKind::kStuckAt;
  e.mask = fault::FaultMask(2, 2);
  e.mask.set_sa0(0, true);
  e.mask.set_sa1(3, true);
  fault::FaultInjector inj(e);
  tensor::IntTensor feature(tensor::Shape{2, 2});
  feature[0] = 9;
  feature[3] = -9;
  inj.apply_output_element(feature, 0, 2, /*execution=*/0, 12);
  const tensor::IntTensor once = feature;
  inj.apply_output_element(feature, 0, 2, /*execution=*/1, 12);
  EXPECT_EQ(feature, once);  // pinning again changes nothing
}

// ---------------------------------------------------------------------------
// Serialization idempotence across the whole zoo: save(load(save(m))) must
// produce byte-identical files and identical logits.
class ZooSerialization : public ::testing::TestWithParam<std::string> {};

TEST_P(ZooSerialization, SaveLoadSaveIsStable) {
  train::Graph g = models::build_zoo_graph(GetParam(), 11);
  bnn::Model model = g.to_inference_model();
  const std::string p1 = ::testing::TempDir() + "/zoo_a.flim";
  const std::string p2 = ::testing::TempDir() + "/zoo_b.flim";
  bnn::save_model(model, p1);
  bnn::Model loaded = bnn::load_model(p1);
  bnn::save_model(loaded, p2);

  std::ifstream f1(p1, std::ios::binary), f2(p2, std::ios::binary);
  const std::vector<char> b1((std::istreambuf_iterator<char>(f1)),
                             std::istreambuf_iterator<char>());
  const std::vector<char> b2((std::istreambuf_iterator<char>(f2)),
                             std::istreambuf_iterator<char>());
  EXPECT_EQ(b1, b2);

  bnn::ReferenceEngine engine;
  const tensor::FloatTensor x(tensor::Shape{1, 3, 32, 32}, 0.4f);
  EXPECT_EQ(model.forward(x, engine), loaded.forward(x, engine));
  std::filesystem::remove(p1);
  std::filesystem::remove(p2);
}

INSTANTIATE_TEST_SUITE_P(FourFamilies, ZooSerialization,
                         ::testing::Values("BinaryDenseNet28",
                                           "BinaryResNetE18", "BiRealNet",
                                           "XNORNet"));

// ---------------------------------------------------------------------------
// March-test properties over every bundled algorithm: a clean array passes
// with the advertised op count, and any single hard stuck-at fault -- the
// fault class every March test guarantees -- is detected wherever it lands.

class MarchAlgorithms : public ::testing::TestWithParam<int> {
 protected:
  reliability::MarchTest test() const {
    return reliability::standard_march_tests()[static_cast<std::size_t>(
        GetParam())];
  }
};

TEST_P(MarchAlgorithms, CleanArrayPassesWithAdvertisedOpCount) {
  lim::CrossbarConfig cfg;
  cfg.rows = 6;
  cfg.cols = 7;  // non-power-of-two on purpose
  lim::CrossbarArray array(cfg);
  const reliability::MarchResult result =
      reliability::run_march(test(), array);
  EXPECT_FALSE(result.detected());
  EXPECT_EQ(result.ops_executed,
            static_cast<std::uint64_t>(test().ops_per_cell()) * 6u * 7u);
}

TEST_P(MarchAlgorithms, SingleStuckAtDetectedAtEveryLocation) {
  lim::CrossbarConfig cfg;
  cfg.rows = 3;
  cfg.cols = 4;
  for (std::int64_t r = 0; r < cfg.rows; ++r) {
    for (std::int64_t c = 0; c < cfg.cols; ++c) {
      for (const auto kind : {lim::DeviceFaultKind::kStuckAt0,
                              lim::DeviceFaultKind::kStuckAt1}) {
        lim::CrossbarArray array(cfg);
        array.inject_device_fault(r, c, kind, 1.0);
        EXPECT_TRUE(reliability::run_march(test(), array).detected())
            << test().name << " missed " << lim::to_string(kind) << " at ("
            << r << "," << c << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, MarchAlgorithms,
                         ::testing::Range(0, 4));

// ---------------------------------------------------------------------------
// ECC scrub invariants over the organization grid: the residual never
// introduces faults, never grows, and scrubbing is idempotent.

class EccOrganizations
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(EccOrganizations, ResidualIsSubsetAndScrubIsIdempotent) {
  const auto [word_bits, interleave, rate] = GetParam();
  const reliability::EccOptions options{word_bits, interleave};

  fault::FaultGenerator gen({24, 40});
  fault::FaultSpec spec;
  spec.kind = fault::FaultKind::kStuckAt;
  spec.injection_rate = rate;
  core::Rng rng(7u + static_cast<std::uint64_t>(word_bits));
  const fault::FaultMask original = gen.generate(spec, rng);

  reliability::EccScrubStats stats;
  const fault::FaultMask residual =
      reliability::apply_secded_scrub(original, options, &stats);

  // Subset: every residual fault existed in the original.
  for (std::int64_t s = 0; s < original.num_slots(); ++s) {
    EXPECT_LE(residual.sa0(s), original.sa0(s));
    EXPECT_LE(residual.sa1(s), original.sa1(s));
    EXPECT_LE(residual.flip(s), original.flip(s));
  }
  // Monotone: the scrub never grows the fault population.
  EXPECT_LE(residual.count_sa0() + residual.count_sa1(),
            original.count_sa0() + original.count_sa1());
  EXPECT_EQ(stats.faulty_bits_before,
            original.count_sa0() + original.count_sa1());
  EXPECT_EQ(stats.faulty_bits_after,
            residual.count_sa0() + residual.count_sa1());

  // Idempotent: surviving words still hold >= 2 faults, so a second pass
  // corrects nothing further.
  const fault::FaultMask twice =
      reliability::apply_secded_scrub(residual, options);
  EXPECT_EQ(twice, residual);
}

INSTANTIATE_TEST_SUITE_P(
    Organizations, EccOrganizations,
    ::testing::Combine(::testing::Values(16, 32, 64),
                       ::testing::Values(1, 2, 8),
                       ::testing::Values(0.002, 0.02, 0.1)));

// ---------------------------------------------------------------------------
// Monitor properties across policies: a reported detection always points at
// a genuinely faulty slot, and the op accounting matches the probe count.

class MonitorPolicies
    : public ::testing::TestWithParam<reliability::CanaryPolicy> {};

TEST_P(MonitorPolicies, DetectionsAreTruthfulAndAccounted) {
  reliability::MonitorConfig cfg;
  cfg.grid = {8, 8};
  cfg.test_period = 4;
  cfg.slots_per_round = 4;
  cfg.policy = GetParam();
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    cfg.seed = seed;
    const reliability::OnlineMonitor monitor(cfg);
    fault::FaultMask mask(8, 8);
    mask.set_sa1(static_cast<std::int64_t>(seed * 7 % 64), true);
    const reliability::DetectionOutcome outcome =
        monitor.run_until_detection(mask, 1 << 20);
    ASSERT_TRUE(outcome.detected);
    EXPECT_TRUE(mask.sa1(outcome.detecting_slot));
    // 2 ops per probe; the final (detecting) round may be partial.
    EXPECT_EQ(outcome.canary_ops_spent % 2, 0);
    EXPECT_GT(outcome.canary_ops_spent, 0);
    EXPECT_EQ(outcome.inferences_elapsed % cfg.test_period, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, MonitorPolicies,
    ::testing::Values(reliability::CanaryPolicy::kRoundRobin,
                      reliability::CanaryPolicy::kRandom));

}  // namespace
}  // namespace flim

// Tests for the training substrate: numerical gradient checks, optimizer
// behavior, convergence, and train->inference equivalence.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "bnn/engine.hpp"
#include "core/rng.hpp"
#include "data/synthetic_mnist.hpp"
#include "tensor/ops.hpp"
#include "train/graph.hpp"
#include "train/loss.hpp"
#include "train/trainer.hpp"

namespace flim::train {
namespace {

using tensor::FloatTensor;
using tensor::Shape;

FloatTensor random_float(const Shape& shape, std::uint64_t seed,
                         double scale = 1.0) {
  core::Rng rng(seed);
  FloatTensor t(shape);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.normal() * scale);
  }
  return t;
}

// Scalar loss used for gradient checking: L = sum(y^2) / 2.
double quadratic_loss(const FloatTensor& y) {
  double acc = 0.0;
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    acc += 0.5 * static_cast<double>(y[i]) * static_cast<double>(y[i]);
  }
  return acc;
}

FloatTensor quadratic_grad(const FloatTensor& y) { return y; }

// Central-difference check of dL/dparam against backprop for one layer.
void check_param_gradients(TrainLayer& layer, const FloatTensor& x,
                           double tolerance = 2e-2) {
  std::vector<ParamRef> params;
  layer.collect_params(params);
  ASSERT_FALSE(params.empty());

  // Analytic gradients.
  FloatTensor y = layer.forward(x, true);
  layer.backward(quadratic_grad(y));

  const float eps = 1e-3f;
  for (const ParamRef& p : params) {
    for (std::int64_t i = 0; i < std::min<std::int64_t>(p.value->numel(), 8);
         ++i) {
      const float saved = (*p.value)[i];
      (*p.value)[i] = saved + eps;
      const double lp = quadratic_loss(layer.forward(x, true));
      (*p.value)[i] = saved - eps;
      const double lm = quadratic_loss(layer.forward(x, true));
      (*p.value)[i] = saved;
      const double numeric = (lp - lm) / (2.0 * eps);
      const double analytic = (*p.grad)[i];
      EXPECT_NEAR(analytic, numeric,
                  tolerance * std::max(1.0, std::abs(numeric)))
          << "param element " << i;
    }
  }
}

// Central-difference check of dL/dx against backprop.
void check_input_gradients(TrainLayer& layer, FloatTensor x,
                           double tolerance = 2e-2) {
  FloatTensor y = layer.forward(x, true);
  const FloatTensor grad_in = layer.backward(quadratic_grad(y));

  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < std::min<std::int64_t>(x.numel(), 8); ++i) {
    const float saved = x[i];
    x[i] = saved + eps;
    const double lp = quadratic_loss(layer.forward(x, true));
    x[i] = saved - eps;
    const double lm = quadratic_loss(layer.forward(x, true));
    x[i] = saved;
    const double numeric = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(grad_in[i], numeric,
                tolerance * std::max(1.0, std::abs(numeric)))
        << "input element " << i;
  }
}

TEST(Gradients, DenseParamsAndInput) {
  core::Rng rng(1);
  TDense dense("d", 6, 4, rng);
  const FloatTensor x = random_float(Shape{3, 6}, 2);
  check_param_gradients(dense, x);
  check_input_gradients(dense, x);
}

TEST(Gradients, Conv2DParamsAndInput) {
  core::Rng rng(3);
  TConv2D conv("c", 2, 3, 3, 1, 1, rng);
  const FloatTensor x = random_float(Shape{2, 2, 5, 5}, 4);
  check_param_gradients(conv, x);
  check_input_gradients(conv, x);
}

TEST(Gradients, Conv2DStride2) {
  core::Rng rng(5);
  TConv2D conv("c", 1, 2, 3, 2, 1, rng);
  const FloatTensor x = random_float(Shape{1, 1, 7, 7}, 6);
  check_param_gradients(conv, x);
  check_input_gradients(conv, x);
}

TEST(Gradients, BatchNormParamsAndInput) {
  TBatchNorm bn("bn", 3);
  // Spread inputs to keep variance healthy for the numeric check.
  const FloatTensor x = random_float(Shape{4, 3, 2, 2}, 7, 2.0);
  check_param_gradients(bn, x, 5e-2);
  check_input_gradients(bn, x, 5e-2);
}

TEST(Gradients, BatchNormRank2) {
  TBatchNorm bn("bn", 4);
  const FloatTensor x = random_float(Shape{8, 4}, 8, 2.0);
  check_param_gradients(bn, x, 5e-2);
}

TEST(Gradients, GlobalAvgPoolInput) {
  TGlobalAvgPool gap("g");
  const FloatTensor x = random_float(Shape{2, 3, 4, 4}, 9);
  check_input_gradients(gap, x);
}

TEST(Gradients, ReLUInput) {
  TReLU relu("r");
  // Keep values away from the kink for clean numerics.
  FloatTensor x = random_float(Shape{2, 10}, 10);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    if (std::abs(x[i]) < 0.1f) x[i] += 0.3f;
  }
  check_input_gradients(relu, x);
}

TEST(Ste, SignPassesGradientInsideWindow) {
  TSign sign("s");
  FloatTensor x(Shape{1, 4}, std::vector<float>{0.5f, -0.5f, 2.0f, -2.0f});
  sign.forward(x, true);
  FloatTensor dy(Shape{1, 4}, 1.0f);
  const FloatTensor dx = sign.backward(dy);
  EXPECT_FLOAT_EQ(dx[0], 1.0f);   // inside window
  EXPECT_FLOAT_EQ(dx[1], 1.0f);   // inside window
  EXPECT_FLOAT_EQ(dx[2], 0.0f);   // clipped
  EXPECT_FLOAT_EQ(dx[3], 0.0f);   // clipped
}

TEST(Ste, BinaryDenseClipsLatentGradient) {
  core::Rng rng(11);
  TBinaryDense dense("bd", 4, 2, rng);
  std::vector<ParamRef> params;
  dense.collect_params(params);
  ASSERT_EQ(params.size(), 1u);
  // Force one latent weight outside the window.
  (*params[0].value)[0] = 3.0f;

  const FloatTensor x = random_float(Shape{2, 4}, 12);
  FloatTensor y = dense.forward(x, true);
  dense.backward(quadratic_grad(y));
  EXPECT_FLOAT_EQ((*params[0].grad)[0], 0.0f);  // clipped by STE window
  // Some other gradient should be non-zero.
  float sum = 0.0f;
  for (std::int64_t i = 0; i < params[0].grad->numel(); ++i) {
    sum += std::abs((*params[0].grad)[i]);
  }
  EXPECT_GT(sum, 0.0f);
}

TEST(MaxPool, GradientRoutesToArgmax) {
  TMaxPool2D pool("p", 2, 2);
  FloatTensor x(Shape{1, 1, 2, 2}, std::vector<float>{1, 5, 2, 3});
  pool.forward(x, true);
  FloatTensor dy(Shape{1, 1, 1, 1}, 7.0f);
  const FloatTensor dx = pool.backward(dy);
  EXPECT_FLOAT_EQ(dx[0], 0.0f);
  EXPECT_FLOAT_EQ(dx[1], 7.0f);
  EXPECT_FLOAT_EQ(dx[2], 0.0f);
}

TEST(Loss, SoftmaxCrossEntropyGradient) {
  const FloatTensor logits = random_float(Shape{4, 5}, 13);
  const std::vector<std::int64_t> labels{0, 2, 4, 1};
  const LossResult res = softmax_cross_entropy(logits, labels);
  EXPECT_GT(res.loss, 0.0);

  // Numeric check on a few elements.
  const float eps = 1e-3f;
  FloatTensor perturbed = logits;
  for (const std::int64_t i : {0L, 7L, 19L}) {
    perturbed[i] = logits[i] + eps;
    const double lp = softmax_cross_entropy(perturbed, labels).loss;
    perturbed[i] = logits[i] - eps;
    const double lm = softmax_cross_entropy(perturbed, labels).loss;
    perturbed[i] = logits[i];
    EXPECT_NEAR(res.grad_logits[i], (lp - lm) / (2.0 * eps), 1e-3);
  }
}

TEST(Optimizer, AdamMinimizesQuadratic) {
  FloatTensor w(Shape{3}, std::vector<float>{5.0f, -4.0f, 3.0f});
  FloatTensor g(Shape{3});
  Adam adam(0.1f);
  adam.attach({{&w, &g}});
  for (int i = 0; i < 300; ++i) {
    for (std::int64_t j = 0; j < 3; ++j) g[j] = w[j];  // dL/dw for L=w^2/2
    adam.step();
  }
  for (std::int64_t j = 0; j < 3; ++j) EXPECT_NEAR(w[j], 0.0f, 0.05f);
}

TEST(Optimizer, SgdMinimizesQuadratic) {
  FloatTensor w(Shape{2}, std::vector<float>{2.0f, -2.0f});
  FloatTensor g(Shape{2});
  Sgd sgd(0.05f, 0.9f);
  sgd.attach({{&w, &g}});
  for (int i = 0; i < 200; ++i) {
    for (std::int64_t j = 0; j < 2; ++j) g[j] = w[j];
    sgd.step();
  }
  for (std::int64_t j = 0; j < 2; ++j) EXPECT_NEAR(w[j], 0.0f, 0.05f);
}

TEST(Optimizer, StepZeroesGradients) {
  FloatTensor w(Shape{1}, 1.0f);
  FloatTensor g(Shape{1}, 1.0f);
  Adam adam(0.01f);
  adam.attach({{&w, &g}});
  adam.step();
  EXPECT_FLOAT_EQ(g[0], 0.0f);
}

Graph tiny_graph(std::uint64_t seed) {
  core::Rng rng(seed);
  Graph g("tiny");
  g.add(std::make_unique<TConv2D>("conv0", 1, 4, 3, 1, 1, rng));
  g.add(std::make_unique<TBatchNorm>("bn0", 4));
  g.add(std::make_unique<TSign>("sign0"));
  g.add(std::make_unique<TMaxPool2D>("pool0", 2, 2));
  g.add(std::make_unique<TBinaryConv2D>("bconv", 4, 8, 3, 1, 1, rng));
  g.add(std::make_unique<TBatchNorm>("bn1", 8));
  g.add(std::make_unique<TSign>("sign1"));
  g.add(std::make_unique<TMaxPool2D>("pool1", 2, 2));
  g.add(std::make_unique<TFlatten>("flat"));
  g.add(std::make_unique<TBinaryDense>("head", 8 * 7 * 7, 10, rng));
  g.add(std::make_unique<TBatchNorm>("bn2", 10));
  return g;
}

TEST(Trainer, LossDecreasesOnSyntheticMnist) {
  data::SyntheticMnistOptions opts;
  opts.size = 512;
  data::SyntheticMnist ds(opts);
  Graph g = tiny_graph(17);
  Adam adam(2e-3f);

  TrainConfig cfg;
  cfg.epochs = 1;
  cfg.batch_size = 32;
  cfg.train_samples = 256;
  const TrainResult first = fit(g, adam, ds, cfg);

  Adam adam2(2e-3f);
  Graph g2 = tiny_graph(17);
  cfg.epochs = 4;
  const TrainResult more = fit(g2, adam2, ds, cfg);
  EXPECT_LT(more.final_train_loss, first.final_train_loss);
  EXPECT_GT(more.final_train_accuracy, 0.4);
}

TEST(Trainer, EvaluateGraphMatchesManualAccuracy) {
  data::SyntheticMnistOptions opts;
  opts.size = 64;
  data::SyntheticMnist ds(opts);
  Graph g = tiny_graph(19);
  const double acc = evaluate_graph(g, ds, 0, 64, 16);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

// Train->inference conversion: eval-mode graph forward must equal the
// converted model's forward with the reference XNOR engine.
TEST(Conversion, GraphAndInferenceModelAgree) {
  data::SyntheticMnistOptions opts;
  opts.size = 128;
  data::SyntheticMnist ds(opts);
  Graph g = tiny_graph(23);
  Adam adam(2e-3f);
  TrainConfig cfg;
  cfg.epochs = 1;
  cfg.batch_size = 16;
  cfg.train_samples = 128;
  fit(g, adam, ds, cfg);

  const data::Batch batch = data::load_batch(ds, 0, 8);
  const FloatTensor graph_logits = g.forward(batch.images, false);

  bnn::Model model = g.to_inference_model();
  bnn::ReferenceEngine engine;
  const FloatTensor model_logits = model.forward(batch.images, engine);

  ASSERT_EQ(graph_logits.shape(), model_logits.shape());
  for (std::int64_t i = 0; i < graph_logits.numel(); ++i) {
    EXPECT_NEAR(graph_logits[i], model_logits[i], 1e-3f) << "logit " << i;
  }
  // And identical predictions.
  EXPECT_EQ(tensor::argmax_rows(graph_logits),
            tensor::argmax_rows(model_logits));
}

TEST(Conversion, XnorGainsSurviveConversion) {
  core::Rng rng(29);
  TBinaryConv2D conv("xc", 2, 3, 3, 1, 1, rng, /*xnor_gains=*/true);
  const FloatTensor x = tensor::sign(random_float(Shape{1, 2, 5, 5}, 30));
  const FloatTensor train_y = conv.forward(x, false);

  bnn::LayerPtr inf = conv.to_inference();
  bnn::ReferenceEngine engine;
  bnn::InferenceContext ctx;
  ctx.engine = &engine;
  const FloatTensor inf_y = inf->forward(x, ctx);
  ASSERT_EQ(train_y.shape(), inf_y.shape());
  for (std::int64_t i = 0; i < train_y.numel(); ++i) {
    EXPECT_NEAR(train_y[i], inf_y[i], 1e-4f);
  }
}

TEST(Blocks, ResidualGradientFlowsBothPaths) {
  core::Rng rng(31);
  std::vector<TrainLayerPtr> body;
  body.push_back(std::make_unique<TDense>("inner", 4, 4, rng));
  TResidualBlock block("res", std::move(body), {});
  const FloatTensor x = random_float(Shape{2, 4}, 32);
  check_input_gradients(block, x);
}

TEST(Blocks, ConcatGradientSplits) {
  core::Rng rng(33);
  std::vector<TrainLayerPtr> body;
  body.push_back(std::make_unique<TConv2D>("inner", 2, 3, 3, 1, 1, rng));
  TConcatBlock block("cat", std::move(body));
  const FloatTensor x = random_float(Shape{1, 2, 4, 4}, 34);
  check_input_gradients(block, x);
}

}  // namespace
}  // namespace flim::train

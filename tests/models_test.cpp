// Tests for the model zoo and the pretrained cache.
#include <gtest/gtest.h>

#include <filesystem>
#include <functional>

#include "bnn/blocks.hpp"
#include "bnn/engine.hpp"
#include "data/synthetic_imagenet.hpp"
#include "data/synthetic_mnist.hpp"
#include "models/pretrained.hpp"
#include "models/zoo.hpp"

namespace flim::models {
namespace {

using tensor::FloatTensor;
using tensor::Shape;

TEST(Zoo, LenetBuildsAndForwards) {
  train::Graph g = build_lenet_binary(1);
  FloatTensor x(Shape{2, 1, 28, 28}, 0.5f);
  const FloatTensor logits = g.forward(x, false);
  EXPECT_EQ(logits.shape(), (Shape{2, 10}));
}

TEST(Zoo, LenetHasTheFourFaultableLayers) {
  train::Graph g = build_lenet_binary(2);
  bnn::Model model = g.to_inference_model();
  const auto c = model.analyze(FloatTensor(Shape{1, 1, 28, 28}, 0.5f));
  ASSERT_EQ(c.binarized_layers.size(), 4u);
  for (const auto& expected : lenet_faultable_layers()) {
    bool found = false;
    for (const auto& w : c.binarized_layers) {
      if (w.layer_name == expected) found = true;
    }
    EXPECT_TRUE(found) << "missing binarized layer " << expected;
  }
}

TEST(Zoo, HasNineModels) {
  EXPECT_EQ(zoo_model_names().size(), 9u);
}

class ZooModels : public ::testing::TestWithParam<std::string> {};

TEST_P(ZooModels, BuildsForwardsAndConverts) {
  train::Graph g = build_zoo_graph(GetParam(), 3);
  FloatTensor x(Shape{1, 3, 32, 32}, 0.3f);
  const FloatTensor logits = g.forward(x, false);
  EXPECT_EQ(logits.shape(), (Shape{1, 10}));

  bnn::Model model = g.to_inference_model();
  bnn::ReferenceEngine engine;
  const FloatTensor model_logits = model.forward(x, engine);
  EXPECT_EQ(model_logits.shape(), (Shape{1, 10}));
  for (std::int64_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(logits[i], model_logits[i], 1e-2f) << GetParam();
  }
}

TEST_P(ZooModels, HasBinarizedLayers) {
  train::Graph g = build_zoo_graph(GetParam(), 4);
  bnn::Model model = g.to_inference_model();
  const auto c = model.analyze(FloatTensor(Shape{1, 3, 32, 32}, 0.3f));
  EXPECT_GT(c.binarized_layers.size(), 0u) << GetParam();
  EXPECT_GT(c.binary_macs, 0) << GetParam();
  EXPECT_GT(c.binarized_percent, 30.0) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllNine, ZooModels,
                         ::testing::ValuesIn(zoo_model_names()));

TEST(Zoo, UnknownModelThrows) {
  EXPECT_THROW(build_zoo_graph("NotAModel", 1), std::invalid_argument);
}

TEST(Zoo, DenseNetDepthLadderOrdersParameters) {
  auto params_of = [](const std::string& name) {
    train::Graph g = build_zoo_graph(name, 5);
    bnn::Model m = g.to_inference_model();
    return m.analyze(FloatTensor(Shape{1, 3, 32, 32}, 0.3f)).total_params;
  };
  const auto p28 = params_of("BinaryDenseNet28");
  const auto p37 = params_of("BinaryDenseNet37");
  const auto p45 = params_of("BinaryDenseNet45");
  EXPECT_LT(p28, p37);
  EXPECT_LT(p37, p45);
}

TEST(Zoo, XnorNetUsesChannelGains) {
  train::Graph g = build_zoo_graph("XNORNet", 6);
  bnn::Model m = g.to_inference_model();
  bool has_scale = false;
  std::function<void(const bnn::Layer&)> scan = [&](const bnn::Layer& l) {
    if (l.type() == "channel_scale") has_scale = true;
    if (l.type() == "sequential") {
      for (const auto& c : static_cast<const bnn::Sequential&>(l).children()) {
        scan(*c);
      }
    }
  };
  for (const auto& l : m.layers()) scan(*l);
  EXPECT_TRUE(has_scale);
}

TEST(Pretrained, TrainsAndCachesLenet) {
  data::SyntheticMnistOptions d;
  d.size = 256;
  data::SyntheticMnist ds(d);

  PretrainOptions opts;
  opts.epochs = 1;
  opts.train_samples = 128;
  opts.cache_dir = ::testing::TempDir() + "/flim_weights_test";
  opts.force_retrain = true;
  std::filesystem::remove_all(opts.cache_dir);

  const bnn::Model trained = pretrained_lenet(ds, opts);
  EXPECT_TRUE(std::filesystem::exists(opts.cache_dir + "/lenet-binary.flim"));

  // Second call loads from cache and yields identical logits.
  opts.force_retrain = false;
  const bnn::Model cached = pretrained_lenet(ds, opts);
  bnn::ReferenceEngine engine;
  const data::Batch batch = data::load_batch(ds, 0, 4);
  EXPECT_EQ(trained.forward(batch.images, engine),
            cached.forward(batch.images, engine));
  std::filesystem::remove_all(opts.cache_dir);
}

}  // namespace
}  // namespace flim::models

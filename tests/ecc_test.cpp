// Unit tests for the ECC codec subsystem: registry + expression language,
// per-family exhaustive small-codeword ground truth against closed-form
// placement counts, the legacy-secded equivalence, combinatorial
// unranking, the durable exhaust store (resume, sharding, merge), and the
// codec-radius residual application in fault/.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "fault/residual.hpp"
#include "reliability/ecc.hpp"
#include "reliability/ecc/codec.hpp"
#include "reliability/ecc/exhaust.hpp"
#include "reliability/ecc/exhaust_store.hpp"
#include "reliability/ecc/registry.hpp"

namespace flim::reliability::ecc {
namespace {

const Codec& configure(const std::string& expr) {
  return CodecRegistry::instance().configure(expr);
}

/// Flips `positions` of the encoding of `data` and decodes the result.
DecodeOutcome decode_with_flips(const Codec& codec, const BitVec& data,
                                const std::vector<int>& positions) {
  BitVec code = codec.encode(data);
  for (const int p : positions) code[static_cast<std::size_t>(p)] ^= 1;
  return codec.decode(code);
}

/// Deterministic but irregular data word for codeword-level tests.
BitVec test_word(int bits, unsigned salt) {
  BitVec data(static_cast<std::size_t>(bits), 0);
  for (int i = 0; i < bits; ++i) {
    data[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(((i * 2654435761u + salt) >> 7) & 1);
  }
  return data;
}

// ---- registry and expression language -------------------------------------

TEST(CodecRegistry, ListsBuiltinFamiliesSorted) {
  std::vector<std::string> names;
  for (const CodecFamily* family : CodecRegistry::instance().families()) {
    names.push_back(family->info().name);
  }
  EXPECT_EQ(names,
            (std::vector<std::string>{"bch", "hamming", "hsiao", "secded"}));
}

TEST(CodecRegistry, CanonicalFormSortsParamsAndStripsSpaces) {
  EXPECT_EQ(canonical_codec_expr("hamming( k=8 , d=64 )"),
            "hamming(d=64,k=8)");
  EXPECT_EQ(canonical_codec_expr("secded"), "secded");
  EXPECT_EQ(canonical_codec_expr("secded()"), "secded");
  EXPECT_EQ(canonical_codec_expr("bch(t=2,d=8)"), "bch(d=8,t=2)");
}

TEST(CodecRegistry, ConfigureCachesPerCanonicalExpression) {
  const Codec& a = configure("hamming(d=64,k=8)");
  const Codec& b = configure("hamming( k=8, d=64 )");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.canonical(), "hamming(d=64,k=8)");
  EXPECT_EQ(a.family(), "hamming");
}

TEST(CodecRegistry, RejectsMalformedExpressions) {
  EXPECT_THROW(parse_codec_expr(""), std::invalid_argument);
  EXPECT_THROW(parse_codec_expr("nosuchcode"), std::invalid_argument);
  EXPECT_THROW(parse_codec_expr("hamming(d=64"), std::invalid_argument);
  EXPECT_THROW(parse_codec_expr("hamming(d)"), std::invalid_argument);
  EXPECT_THROW(parse_codec_expr("hamming(z=1)"), std::invalid_argument);
  // No '+' composition: one code per codeword.
  EXPECT_THROW(parse_codec_expr("secded+hamming"), std::invalid_argument);
}

TEST(CodecRegistry, ValidatesCrossParameterRules) {
  // d=64 needs m=7, so k must be 0 (auto), 7 (SEC) or 8 (SEC-DED).
  EXPECT_THROW(parse_codec_expr("hamming(d=64,k=5)"), std::invalid_argument);
  EXPECT_NO_THROW(parse_codec_expr("hamming(d=64,k=7)"));
  // hsiao d=64 needs k >= 8 for odd-weight column coverage.
  EXPECT_THROW(parse_codec_expr("hsiao(d=64,k=7)"), std::invalid_argument);
  // bch: GF(2^4) cannot hold 64 data bits.
  EXPECT_THROW(parse_codec_expr("bch(d=64,t=2,m=4)"), std::invalid_argument);
  EXPECT_THROW(parse_codec_expr("secded(d=32)"), std::invalid_argument);
}

// ---- capabilities and cost models -----------------------------------------

TEST(CodecCapability, MatchesClassicalGeometries) {
  const Capability& hamming = configure("hamming(d=64,k=8)").capability();
  EXPECT_EQ(hamming.parity_bits, 8);
  EXPECT_EQ(hamming.code_bits, 72);
  EXPECT_EQ(hamming.correct_guarantee, 1);
  EXPECT_EQ(hamming.detect_guarantee, 2);

  // Auto-sized Hsiao over 64 data bits is the standard (72,64) geometry.
  const Capability& hsiao = configure("hsiao(d=64,k=0)").capability();
  EXPECT_EQ(hsiao.parity_bits, 8);
  EXPECT_EQ(hsiao.code_bits, 72);
  EXPECT_EQ(hsiao.detect_guarantee, 2);

  const Capability& secded = configure("secded").capability();
  EXPECT_EQ(secded.data_bits, 64);
  EXPECT_EQ(secded.code_bits, 72);

  // bch(d=8,t=2) lives in GF(2^5): two degree-5 minimal polynomials give
  // 10 parity bits, an (18,8) shortened code.
  const Capability& bch = configure("bch(d=8,t=2)").capability();
  EXPECT_EQ(bch.parity_bits, 10);
  EXPECT_EQ(bch.code_bits, 18);
  EXPECT_EQ(bch.correct_guarantee, 2);
}

TEST(CodecCost, ColumnAndCycleArithmetic) {
  const CostModel cost = configure("secded").cost();
  EXPECT_DOUBLE_EQ(cost.parity_overhead(), 0.125);
  // 100 columns -> 2 words of 64 -> 16 parity columns.
  EXPECT_EQ(cost.extra_columns(100), 16);
  EXPECT_EQ(cost.extra_columns(64), 8);
  EXPECT_GT(cost.syndrome_ops_per_word, 0);
  EXPECT_EQ(cost.scrub_cycles(128), 2 * cost.syndrome_ops_per_word);
}

// ---- encode/decode round trips --------------------------------------------

TEST(CodecRoundTrip, CleanCodewordsDecodeClean) {
  for (const char* expr :
       {"hamming(d=8,k=4)", "hamming(d=8,k=5)", "hamming(d=64,k=8)",
        "hsiao(d=8,k=0)", "hsiao(d=64,k=0)", "secded", "bch(d=8,t=2)",
        "bch(d=64,t=2)", "bch(d=64,t=4)"}) {
    const Codec& codec = configure(expr);
    for (unsigned salt : {0u, 1u, 77u}) {
      const BitVec data = test_word(codec.capability().data_bits, salt);
      const DecodeOutcome outcome = codec.decode(codec.encode(data));
      EXPECT_EQ(outcome.status, DecodeStatus::kClean) << expr;
      EXPECT_EQ(outcome.data, data) << expr;
    }
  }
}

TEST(CodecRoundTrip, CorrectRepairsWithinRadius) {
  const Codec& bch = configure("bch(d=8,t=2)");
  const BitVec data = test_word(8, 3);
  const BitVec code = bch.encode(data);
  BitVec corrupted = code;
  corrupted[2] ^= 1;
  corrupted[11] ^= 1;
  EXPECT_EQ(bch.correct(corrupted), code);
}

// ---- exhaustive ground truth ----------------------------------------------

/// Runs an in-memory exhaustive enumeration of `weights` over `expr`.
ExhaustResult exhaust(const std::string& expr, std::vector<int> weights,
                      bool burst = false) {
  ExhaustSpec spec;
  spec.codec_expr = expr;
  spec.weights = std::move(weights);
  spec.burst = burst;
  spec.chunk = 97;  // deliberately straddles weight-block boundaries
  return run_exhaust(spec, "", 0, 1, 2);
}

TEST(Exhaust, ExtendedHammingGroundTruth) {
  // hamming(d=8,k=5) is the (13,8) extended code: every single error is
  // corrected, every double detected -- closed-form C(13,1) and C(13,2).
  const ExhaustResult r = exhaust("hamming(d=8,k=5)", {1, 2});
  ASSERT_EQ(r.per_weight.size(), 2u);
  EXPECT_EQ(r.per_weight[0].placements, 13u);
  EXPECT_EQ(r.per_weight[0].corrected, 13u);
  EXPECT_EQ(r.per_weight[0].aliased, 0u);
  EXPECT_EQ(r.per_weight[1].placements, ncr(13, 2));
  EXPECT_EQ(r.per_weight[1].detected, ncr(13, 2));
  EXPECT_EQ(r.per_weight[1].aliased, 0u);
}

TEST(Exhaust, PlainSecHammingAliasesDoubles) {
  // hamming(d=8,k=4) is the (12,8) SEC code: singles corrected, doubles
  // NOT guaranteed -- every double error lands on some single-error
  // syndrome or another codeword, so none is corrected and the aliased
  // count is the whole C(12,2) minus whatever the out-of-range-syndrome
  // check happens to catch.
  const ExhaustResult r = exhaust("hamming(d=8,k=4)", {1, 2});
  ASSERT_EQ(r.per_weight.size(), 2u);
  EXPECT_EQ(r.per_weight[0].placements, 12u);
  EXPECT_EQ(r.per_weight[0].corrected, 12u);
  EXPECT_EQ(r.per_weight[1].placements, ncr(12, 2));
  EXPECT_EQ(r.per_weight[1].corrected, 0u);
  EXPECT_GT(r.per_weight[1].aliased, 0u);
  EXPECT_EQ(r.per_weight[1].corrected + r.per_weight[1].detected +
                r.per_weight[1].aliased,
            ncr(12, 2));
}

TEST(Exhaust, HsiaoGroundTruth) {
  // hsiao(d=8,k=0) auto-sizes to (13,8); SEC-DED guarantees hold.
  const ExhaustResult r = exhaust("hsiao(d=8,k=0)", {1, 2});
  EXPECT_EQ(r.per_weight[0].corrected, 13u);
  EXPECT_EQ(r.per_weight[1].detected, ncr(13, 2));
  EXPECT_EQ(r.per_weight[1].aliased, 0u);
}

TEST(Exhaust, BchGroundTruthThroughRadius) {
  // bch(d=8,t=2) is (18,8): ALL weight-1 and weight-2 placements must be
  // corrected; weight-3 exceeds the radius and must never be silently
  // miscorrected more often than detected-or-corrected sums allow.
  const ExhaustResult r = exhaust("bch(d=8,t=2)", {1, 2, 3});
  ASSERT_EQ(r.per_weight.size(), 3u);
  EXPECT_EQ(r.per_weight[0].placements, 18u);
  EXPECT_EQ(r.per_weight[0].corrected, 18u);
  EXPECT_EQ(r.per_weight[1].placements, ncr(18, 2));
  EXPECT_EQ(r.per_weight[1].corrected, ncr(18, 2));
  EXPECT_EQ(r.per_weight[1].aliased, 0u);
  EXPECT_EQ(r.per_weight[2].placements, ncr(18, 3));
  EXPECT_EQ(r.per_weight[2].corrected + r.per_weight[2].detected +
                r.per_weight[2].aliased,
            ncr(18, 3));
  // A t=2 code cannot correct any weight-3 pattern back to the original.
  EXPECT_EQ(r.per_weight[2].corrected, 0u);
}

TEST(Exhaust, SecdedPluginMatchesGenericHamming) {
  // The secded plugin wraps the legacy codec with the same codeword layout
  // the generic extended hamming(d=64,k=8) uses, so every one of the
  // 72 + C(72,2) placements must classify identically.
  const ExhaustResult legacy = exhaust("secded", {1, 2});
  const ExhaustResult generic = exhaust("hamming(d=64,k=8)", {1, 2});
  ASSERT_EQ(legacy.per_weight.size(), generic.per_weight.size());
  for (std::size_t i = 0; i < legacy.per_weight.size(); ++i) {
    EXPECT_EQ(legacy.per_weight[i].corrected, generic.per_weight[i].corrected);
    EXPECT_EQ(legacy.per_weight[i].detected, generic.per_weight[i].detected);
    EXPECT_EQ(legacy.per_weight[i].aliased, generic.per_weight[i].aliased);
  }
  EXPECT_EQ(legacy.per_weight[0].corrected, 72u);
  EXPECT_EQ(legacy.per_weight[1].detected, ncr(72, 2));
}

TEST(Exhaust, SecdedPluginAgreesWithLegacyCodecPerPlacement) {
  // Direct per-placement cross-check against reliability::SecDedCodec:
  // every single-bit flip is corrected back to the same data the legacy
  // decoder reports for ITS single-bit flips (both must return the
  // original word), and parity-only flips leave data intact.
  const Codec& plugin = configure("secded");
  const BitVec data = test_word(64, 9);
  std::uint64_t packed = 0;
  for (int i = 0; i < 64; ++i) {
    if (data[static_cast<std::size_t>(i)]) packed |= 1ull << i;
  }
  SecDedCodec legacy;
  const SecDedCodec::Codeword word = legacy.encode(packed);
  for (int p = 0; p < 72; ++p) {
    const DecodeOutcome outcome = decode_with_flips(plugin, data, {p});
    EXPECT_EQ(outcome.status, DecodeStatus::kCorrected) << p;
    EXPECT_EQ(outcome.data, data) << p;
  }
  // And the legacy codec agrees on its own representation.
  for (int b = 0; b < 64; ++b) {
    SecDedCodec::Codeword corrupted = word;
    corrupted.data ^= 1ull << b;
    const SecDedCodec::DecodeResult r = legacy.decode(corrupted);
    EXPECT_EQ(r.status, SecDedCodec::Status::kCorrectedSingle);
    EXPECT_EQ(r.data, packed);
  }
}

TEST(Exhaust, BurstModeEnumeratesWindows) {
  // (13,8) extended Hamming, burst length 2: 12 windows, every adjacent
  // double detected.
  const ExhaustResult r = exhaust("hamming(d=8,k=5)", {2}, /*burst=*/true);
  ASSERT_EQ(r.per_weight.size(), 1u);
  EXPECT_EQ(r.per_weight[0].placements, 12u);
  EXPECT_EQ(r.per_weight[0].detected, 12u);

  // bch t=2 corrects every length-2 burst.
  const ExhaustResult b = exhaust("bch(d=8,t=2)", {2}, /*burst=*/true);
  EXPECT_EQ(b.per_weight[0].placements, 17u);
  EXPECT_EQ(b.per_weight[0].corrected, 17u);
}

// ---- combinatorics --------------------------------------------------------

TEST(Unranking, CoversEveryCombinationExactlyOnce) {
  const int n = 11;
  const int r = 3;
  const std::uint64_t total = ncr(n, r);
  EXPECT_EQ(total, 165u);
  std::set<std::vector<int>> seen;
  std::vector<int> prev;
  for (std::uint64_t rank = 0; rank < total; ++rank) {
    std::vector<int> combo = unrank_combination(n, r, rank);
    ASSERT_EQ(combo.size(), 3u);
    EXPECT_TRUE(combo[0] < combo[1] && combo[1] < combo[2]);
    EXPECT_LT(combo[2], n);
    if (!prev.empty()) {
      EXPECT_LT(prev, combo);  // lexicographic order
    }
    EXPECT_TRUE(seen.insert(combo).second);
    prev = std::move(combo);
  }
  EXPECT_EQ(seen.size(), total);
  EXPECT_THROW(unrank_combination(n, r, total), std::invalid_argument);
}

TEST(Unranking, NcrEdgeCasesAndOverflow) {
  EXPECT_EQ(ncr(5, 0), 1u);
  EXPECT_EQ(ncr(5, 5), 1u);
  EXPECT_EQ(ncr(5, 6), 0u);
  EXPECT_EQ(ncr(72, 2), 2556u);
  EXPECT_THROW(ncr(200, 100), std::invalid_argument);
}

TEST(Exhaust, NormalizeSortsAndValidatesWeights) {
  ExhaustSpec spec;
  spec.codec_expr = "hamming( k=5, d=8 )";
  spec.weights = {2, 1, 2};
  const ExhaustSpec norm = normalize_exhaust_spec(spec);
  EXPECT_EQ(norm.codec_expr, "hamming(d=8,k=5)");
  EXPECT_EQ(norm.weights, (std::vector<int>{1, 2}));

  spec.weights = {0};
  EXPECT_THROW(normalize_exhaust_spec(spec), std::invalid_argument);
  spec.weights = {14};  // (13,8) has only 13 code bits
  EXPECT_THROW(normalize_exhaust_spec(spec), std::invalid_argument);
}

// ---- durable store: resume, shard, merge ----------------------------------

class ExhaustStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("flim_ecc_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  static ExhaustSpec small_spec() {
    ExhaustSpec spec;
    spec.codec_expr = "hamming(d=8,k=5)";
    spec.weights = {1, 2};
    spec.chunk = 7;  // 13 + 78 = 91 placements -> 13 chunks
    return spec;
  }

  std::filesystem::path dir_;
};

TEST_F(ExhaustStoreTest, ShardedMergeMatchesSingleProcessByteForByte) {
  const ExhaustSpec spec = small_spec();
  const ExhaustResult single = run_exhaust(spec, path("single.jsonl"), 0, 1, 2);
  run_exhaust(spec, path("shard0.jsonl"), 0, 2, 2);
  run_exhaust(spec, path("shard1.jsonl"), 1, 2, 1);
  const ExhaustResult merged =
      merge_exhaust_files({path("shard0.jsonl"), path("shard1.jsonl")});
  EXPECT_EQ(merged.to_table().to_csv(), single.to_table().to_csv());
  EXPECT_EQ(single.per_weight[0].corrected, 13u);
  EXPECT_EQ(single.per_weight[1].detected, 78u);

  // A lone complete file merges too.
  const ExhaustResult alone = merge_exhaust_files({path("single.jsonl")});
  EXPECT_EQ(alone.to_table().to_csv(), single.to_table().to_csv());
}

TEST_F(ExhaustStoreTest, MergeRejectsIncompleteShardSets) {
  const ExhaustSpec spec = small_spec();
  run_exhaust(spec, path("shard0.jsonl"), 0, 2, 1);
  EXPECT_THROW(merge_exhaust_files({path("shard0.jsonl")}),
               std::invalid_argument);
}

TEST_F(ExhaustStoreTest, ResumesFromTornTail) {
  const ExhaustSpec spec = small_spec();
  const ExhaustResult fresh = run_exhaust(spec, path("run.jsonl"), 0, 1, 1);

  // Simulate a kill mid-write: drop the last line and leave a torn
  // fragment. The next run must resume, recompute only what is missing,
  // and produce identical results.
  std::ifstream in(path("run.jsonl"), std::ios::binary);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  in.close();
  ASSERT_GT(lines.size(), 3u);
  std::ofstream out(path("run.jsonl"), std::ios::binary | std::ios::trunc);
  for (std::size_t i = 0; i + 1 < lines.size(); ++i) out << lines[i] << "\n";
  out << "{\"chunk\": \"torn";  // no newline: a torn final write
  out.close();

  const ExhaustFile before = ExhaustFile::load(path("run.jsonl"));
  EXPECT_TRUE(before.truncated_tail);
  EXPECT_FALSE(before.complete());

  const ExhaustResult resumed = run_exhaust(spec, path("run.jsonl"), 0, 1, 1);
  EXPECT_EQ(resumed.to_table().to_csv(), fresh.to_table().to_csv());
  EXPECT_TRUE(ExhaustFile::load(path("run.jsonl")).complete());
}

TEST_F(ExhaustStoreTest, RefusesForeignStores) {
  const ExhaustSpec spec = small_spec();
  run_exhaust(spec, path("run.jsonl"), 0, 1, 1);

  ExhaustSpec other = spec;
  other.data_seed += 1;  // different placement data -> different fingerprint
  EXPECT_THROW(run_exhaust(other, path("run.jsonl"), 0, 1, 1),
               std::invalid_argument);
  // Same spec, different shard identity: also refused.
  EXPECT_THROW(run_exhaust(spec, path("run.jsonl"), 0, 2, 1),
               std::invalid_argument);
}

TEST_F(ExhaustStoreTest, FingerprintIgnoresSpelling) {
  ExhaustSpec a = small_spec();
  ExhaustSpec b = small_spec();
  b.codec_expr = "hamming( k=5 ,d=8)";
  b.weights = {2, 1};
  EXPECT_EQ(exhaust_fingerprint(normalize_exhaust_spec(a)),
            exhaust_fingerprint(normalize_exhaust_spec(b)));
}

// ---- codec-radius residual application ------------------------------------

TEST(Residual, RadiusTwoClearsDoubleFaultWords) {
  fault::FaultMask mask(1, 8);
  mask.set_flip(0, true);
  mask.set_sa0(3, true);  // two faults in the single 8-cell word
  fault::ResidualOptions options;
  options.word_bits = 8;
  options.interleave = 1;

  options.correct_per_word = 1;
  fault::ResidualStats stats;
  fault::FaultMask residual1 =
      fault::apply_word_residual(mask, options, &stats);
  EXPECT_TRUE(residual1.any());
  EXPECT_EQ(stats.uncorrectable_words, 1);

  options.correct_per_word = 2;
  fault::FaultMask residual2 =
      fault::apply_word_residual(mask, options, &stats);
  EXPECT_FALSE(residual2.any());
  EXPECT_EQ(stats.corrected_words, 1);
  EXPECT_EQ(stats.faulty_bits_after, 0);
}

TEST(Residual, LegacyScrubIsRadiusOneBitIdentical) {
  fault::FaultMask mask(2, 8);
  mask.set_flip(1, true);
  mask.set_sa1(9, true);
  mask.set_sa0(10, true);
  EccOptions legacy_options{4, 2};
  EccScrubStats legacy_stats;
  const fault::FaultMask legacy =
      apply_secded_scrub(mask, legacy_options, &legacy_stats);

  fault::ResidualOptions options;
  options.word_bits = 4;
  options.interleave = 2;
  options.correct_per_word = 1;
  fault::ResidualStats stats;
  const fault::FaultMask generic =
      fault::apply_word_residual(mask, options, &stats);
  for (std::int64_t slot = 0; slot < mask.num_slots(); ++slot) {
    EXPECT_EQ(legacy.flip(slot), generic.flip(slot)) << slot;
    EXPECT_EQ(legacy.sa0(slot), generic.sa0(slot)) << slot;
    EXPECT_EQ(legacy.sa1(slot), generic.sa1(slot)) << slot;
  }
  EXPECT_EQ(legacy_stats.words, stats.words);
  EXPECT_EQ(legacy_stats.corrected_words, stats.corrected_words);
  EXPECT_EQ(legacy_stats.uncorrectable_words, stats.uncorrectable_words);
}

TEST(Residual, EntryResidualScrubsUnionOfComponents) {
  // Two components each place ONE fault in the same 4-cell word: the
  // physical word holds two faults, so a radius-1 scrub must keep both,
  // while a radius-2 scrub clears both components.
  fault::FaultVectorEntry entry;
  entry.layer_name = "fc1";
  entry.components.resize(2);
  entry.components[0].model = "stuckat";
  entry.components[0].mask = fault::FaultMask(1, 4);
  entry.components[0].mask.set_sa0(1, true);
  entry.components[1].model = "bitflip";
  entry.components[1].mask = fault::FaultMask(1, 4);
  entry.components[1].mask.set_flip(2, true);

  fault::ResidualOptions options;
  options.word_bits = 4;
  options.correct_per_word = 1;
  fault::FaultVectorEntry radius1 = entry;
  fault::ResidualStats stats;
  fault::apply_entry_residual(radius1, options, &stats);
  EXPECT_TRUE(radius1.components[0].mask.any());
  EXPECT_TRUE(radius1.components[1].mask.any());
  EXPECT_EQ(stats.uncorrectable_words, 1);

  options.correct_per_word = 2;
  fault::FaultVectorEntry radius2 = entry;
  fault::apply_entry_residual(radius2, options, &stats);
  EXPECT_FALSE(radius2.components[0].mask.any());
  EXPECT_FALSE(radius2.components[1].mask.any());
  EXPECT_EQ(stats.corrected_words, 1);
}

}  // namespace
}  // namespace flim::reliability::ecc

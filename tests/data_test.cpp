// Unit tests for the synthetic datasets.
#include <gtest/gtest.h>

#include <array>

#include "data/synthetic_imagenet.hpp"
#include "data/synthetic_mnist.hpp"

namespace flim::data {
namespace {

TEST(SyntheticMnist, GeometryAndLabels) {
  SyntheticMnist ds;
  EXPECT_EQ(ds.size(), 10000);
  EXPECT_EQ(ds.channels(), 1);
  EXPECT_EQ(ds.height(), 28);
  EXPECT_EQ(ds.width(), 28);
  EXPECT_EQ(ds.num_classes(), 10);
  for (std::int64_t i = 0; i < 50; ++i) {
    const Sample s = ds.get(i);
    EXPECT_GE(s.label, 0);
    EXPECT_LT(s.label, 10);
    EXPECT_EQ(s.image.shape(), (tensor::Shape{1, 28, 28}));
  }
}

TEST(SyntheticMnist, PixelsInUnitRange) {
  SyntheticMnist ds;
  for (std::int64_t i = 0; i < 20; ++i) {
    const Sample s = ds.get(i);
    for (std::int64_t p = 0; p < s.image.numel(); ++p) {
      EXPECT_GE(s.image[p], 0.0f);
      EXPECT_LE(s.image[p], 1.0f);
    }
  }
}

TEST(SyntheticMnist, IsDeterministicPerIndex) {
  SyntheticMnist a, b;
  for (std::int64_t i : {0, 17, 999}) {
    const Sample sa = a.get(i);
    const Sample sb = b.get(i);
    EXPECT_EQ(sa.label, sb.label);
    EXPECT_EQ(sa.image, sb.image);
  }
}

TEST(SyntheticMnist, DifferentSeedsDiffer) {
  SyntheticMnistOptions o1, o2;
  o2.seed = o1.seed + 1;
  SyntheticMnist a(o1), b(o2);
  int identical = 0;
  for (std::int64_t i = 0; i < 20; ++i) {
    if (a.get(i).image == b.get(i).image) ++identical;
  }
  EXPECT_LT(identical, 2);
}

TEST(SyntheticMnist, DigitHasInk) {
  SyntheticMnist ds;
  for (std::int64_t i = 0; i < 20; ++i) {
    const Sample s = ds.get(i);
    float total = 0.0f;
    for (std::int64_t p = 0; p < s.image.numel(); ++p) total += s.image[p];
    EXPECT_GT(total, 10.0f) << "sample " << i << " looks empty";
    EXPECT_LT(total, 500.0f) << "sample " << i << " looks saturated";
  }
}

TEST(SyntheticMnist, ClassesRoughlyBalanced) {
  SyntheticMnist ds;
  std::array<int, 10> counts{};
  for (std::int64_t i = 0; i < 2000; ++i) {
    counts[static_cast<std::size_t>(ds.get(i).label)]++;
  }
  for (const int c : counts) {
    EXPECT_GT(c, 120);  // expectation 200 each
    EXPECT_LT(c, 300);
  }
}

TEST(SyntheticMnist, RejectsBadOptionsAndIndices) {
  SyntheticMnistOptions bad;
  bad.size = 0;
  EXPECT_THROW(SyntheticMnist{bad}, std::invalid_argument);
  SyntheticMnist ds;
  EXPECT_THROW(ds.get(-1), std::invalid_argument);
  EXPECT_THROW(ds.get(ds.size()), std::invalid_argument);
}

TEST(SyntheticImagenet, GeometryAndDeterminism) {
  SyntheticImagenet ds;
  EXPECT_EQ(ds.channels(), 3);
  EXPECT_EQ(ds.height(), 32);
  EXPECT_EQ(ds.width(), 32);
  const Sample a = ds.get(123);
  const Sample b = SyntheticImagenet().get(123);
  EXPECT_EQ(a.label, b.label);
  EXPECT_EQ(a.image, b.image);
  EXPECT_EQ(a.image.shape(), (tensor::Shape{3, 32, 32}));
}

TEST(SyntheticImagenet, PixelsInUnitRange) {
  SyntheticImagenet ds;
  for (std::int64_t i = 0; i < 20; ++i) {
    const Sample s = ds.get(i);
    for (std::int64_t p = 0; p < s.image.numel(); ++p) {
      EXPECT_GE(s.image[p], 0.0f);
      EXPECT_LE(s.image[p], 1.0f);
    }
  }
}

TEST(SyntheticImagenet, AllClassesAppear) {
  SyntheticImagenet ds;
  std::array<int, 10> counts{};
  for (std::int64_t i = 0; i < 1000; ++i) {
    counts[static_cast<std::size_t>(ds.get(i).label)]++;
  }
  for (const int c : counts) EXPECT_GT(c, 50);
}

TEST(Batch, StacksContiguousRange) {
  SyntheticMnist ds;
  const Batch b = load_batch(ds, 5, 3);
  EXPECT_EQ(b.images.shape(), (tensor::Shape{3, 1, 28, 28}));
  ASSERT_EQ(b.labels.size(), 3u);
  for (std::int64_t i = 0; i < 3; ++i) {
    const Sample s = ds.get(5 + i);
    EXPECT_EQ(b.labels[static_cast<std::size_t>(i)], s.label);
    for (std::int64_t p = 0; p < s.image.numel(); ++p) {
      EXPECT_FLOAT_EQ(b.images[i * 28 * 28 + p], s.image[p]);
    }
  }
}

TEST(Batch, StacksArbitraryIndices) {
  SyntheticImagenet ds;
  const Batch b = load_batch(ds, std::vector<std::int64_t>{9, 2, 2});
  EXPECT_EQ(b.images.shape(), (tensor::Shape{3, 3, 32, 32}));
  EXPECT_EQ(b.labels[1], b.labels[2]);
}

TEST(Batch, RejectsOutOfRange) {
  SyntheticMnist ds;
  EXPECT_THROW(load_batch(ds, ds.size() - 1, 2), std::invalid_argument);
  EXPECT_THROW(load_batch(ds, std::vector<std::int64_t>{-1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace flim::data

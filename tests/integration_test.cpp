// End-to-end integration tests: the full train -> convert -> inject ->
// evaluate pipeline, reproducing the paper's verification experiments and
// qualitative findings on small configurations.
#include <gtest/gtest.h>

#include <filesystem>

#include "bnn/engine.hpp"
#include "bnn/flim_engine.hpp"
#include "bnn/model.hpp"
#include "core/campaign.hpp"
#include "core/rng.hpp"
#include "data/synthetic_mnist.hpp"
#include "fault/fault_generator.hpp"
#include "fault/fault_vector_file.hpp"
#include "models/zoo.hpp"
#include "train/trainer.hpp"
#include "xfault/device_engine.hpp"

namespace flim {
namespace {

using tensor::FloatTensor;
using tensor::Shape;

struct Fixture {
  data::SyntheticMnist dataset;
  bnn::Model model;
  data::Batch eval_batch;
  std::vector<bnn::LayerWorkload> layers;

  static const Fixture& instance() {
    static Fixture* f = [] {
      auto* fx = new Fixture();
      data::SyntheticMnistOptions opts;
      opts.size = 1500;
      fx->dataset = data::SyntheticMnist(opts);

      train::Graph graph = models::build_lenet_binary(99);
      train::Adam adam(2e-3f);
      train::TrainConfig cfg;
      cfg.epochs = 3;
      cfg.batch_size = 32;
      cfg.train_samples = 1200;
      train::fit(graph, adam, fx->dataset, cfg);
      fx->model = graph.to_inference_model();

      fx->eval_batch = data::load_batch(fx->dataset, 1200, 300);
      fx->layers = fx->model
                       .analyze(FloatTensor(Shape{1, 1, 28, 28}, 0.5f))
                       .binarized_layers;
      return fx;
    }();
    return *f;
  }
};

double eval_with_engine(bnn::XnorExecutionEngine& engine) {
  const Fixture& fx = Fixture::instance();
  return fx.model.evaluate(fx.eval_batch, engine);
}

double eval_with_fault(fault::FaultKind kind, double rate,
                       fault::FaultGranularity granularity,
                       std::uint64_t seed,
                       const std::string& only_layer = "") {
  const Fixture& fx = Fixture::instance();
  fault::FaultGenerator gen({64, 64});
  core::Rng rng(seed);
  bnn::FlimEngine engine;
  fault::FaultSpec spec;
  spec.kind = kind;
  spec.injection_rate = rate;
  spec.granularity = granularity;
  for (const auto& layer : fx.layers) {
    if (!only_layer.empty() && layer.layer_name != only_layer) continue;
    fault::FaultVectorEntry entry;
    entry.layer_name = layer.layer_name;
    entry.kind = kind;
    entry.granularity = granularity;
    entry.mask = gen.generate(spec, rng);
    engine.set_layer_fault(entry);
  }
  return fx.model.evaluate(fx.eval_batch, engine);
}

TEST(EndToEnd, TrainedModelBeatsChance) {
  bnn::ReferenceEngine engine;
  const double acc = eval_with_engine(engine);
  EXPECT_GT(acc, 0.7) << "LeNet failed to learn the synthetic digits";
}

// Paper verification experiment 1: FLIM with no faults == vanilla.
TEST(EndToEnd, FlimWithoutFaultsEqualsVanilla) {
  bnn::ReferenceEngine ref;
  bnn::FlimEngine flim;
  EXPECT_DOUBLE_EQ(eval_with_engine(ref), eval_with_engine(flim));
}

TEST(EndToEnd, ZeroRateInjectionIsHarmless) {
  bnn::ReferenceEngine ref;
  const double clean = eval_with_engine(ref);
  const double faulty = eval_with_fault(
      fault::FaultKind::kBitFlip, 0.0, fault::FaultGranularity::kOutputElement,
      1);
  EXPECT_DOUBLE_EQ(clean, faulty);
}

TEST(EndToEnd, HighBitFlipRateDegradesAccuracy) {
  bnn::ReferenceEngine ref;
  const double clean = eval_with_engine(ref);
  core::RunningStats faulty;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    faulty.add(eval_with_fault(fault::FaultKind::kBitFlip, 0.3,
                               fault::FaultGranularity::kOutputElement, seed));
  }
  EXPECT_LT(faulty.mean(), clean - 0.05);
}

// Paper finding: stuck-at faults hurt more than bit-flips at equal rate.
TEST(EndToEnd, StuckAtWorseThanBitFlip) {
  core::RunningStats flips, stuck;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    flips.add(eval_with_fault(fault::FaultKind::kBitFlip, 0.15,
                              fault::FaultGranularity::kOutputElement, seed));
    stuck.add(eval_with_fault(fault::FaultKind::kStuckAt, 0.15,
                              fault::FaultGranularity::kOutputElement, seed));
  }
  EXPECT_LT(stuck.mean(), flips.mean() + 0.02);
}

// Paper finding: dynamic faults recover accuracy as the period grows.
TEST(EndToEnd, DynamicFaultsRecoverWithPeriod) {
  const Fixture& fx = Fixture::instance();
  fault::FaultGenerator gen({64, 64});

  auto eval_dynamic = [&](int period) {
    core::RunningStats stats;
    for (std::uint64_t seed = 0; seed < 2; ++seed) {
      core::Rng rng(seed);
      bnn::FlimEngine engine;
      for (const auto& layer : fx.layers) {
        fault::FaultSpec spec;
        spec.kind = fault::FaultKind::kDynamic;
        spec.injection_rate = 0.25;
        spec.dynamic_period = period;
        fault::FaultVectorEntry entry;
        entry.layer_name = layer.layer_name;
        entry.kind = fault::FaultKind::kDynamic;
        entry.dynamic_period = period;
        entry.mask = gen.generate(spec, rng);
        engine.set_layer_fault(entry);
      }
      stats.add(fx.model.evaluate(fx.eval_batch, engine));
    }
    return stats.mean();
  };

  bnn::ReferenceEngine ref;
  const double clean = eval_with_engine(ref);
  const double always = eval_dynamic(0);
  const double sparse = eval_dynamic(4);
  EXPECT_LT(always, clean);
  EXPECT_GT(sparse, always);
  EXPECT_NEAR(sparse, clean, (clean - always) * 0.6 + 0.02);
}

// Paper finding: deeper layers are more sensitive to bit-flips.
TEST(EndToEnd, PerLayerInjectionAffectsOnlyThatLayer) {
  bnn::ReferenceEngine ref;
  const double clean = eval_with_engine(ref);
  core::RunningStats conv1_hit, dense1_hit;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    conv1_hit.add(eval_with_fault(fault::FaultKind::kBitFlip, 0.25,
                                  fault::FaultGranularity::kOutputElement,
                                  seed, "conv1"));
    dense1_hit.add(eval_with_fault(fault::FaultKind::kBitFlip, 0.25,
                                   fault::FaultGranularity::kOutputElement,
                                   seed, "dense1"));
  }
  // Single-layer faults must degrade (or at worst match) clean accuracy;
  // the quantitative per-layer ordering is reported by the Fig 4a bench.
  EXPECT_LE(conv1_hit.mean(), clean + 1e-9);
  EXPECT_LT(dense1_hit.mean(), clean);
}

// Both granularities must show degradation; they need not be identical.
TEST(EndToEnd, ProductTermGranularityAlsoDegrades) {
  bnn::ReferenceEngine ref;
  const double clean = eval_with_engine(ref);
  core::RunningStats stats;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    stats.add(eval_with_fault(fault::FaultKind::kStuckAt, 0.4,
                              fault::FaultGranularity::kProductTerm, seed));
  }
  EXPECT_LT(stats.mean(), clean);
}

// Fault vector files drive a full campaign end-to-end.
TEST(EndToEnd, FaultVectorFileWorkflow) {
  const Fixture& fx = Fixture::instance();
  fault::FaultGenerator gen({32, 32});
  core::Rng rng(7);

  fault::FaultVectorFile file;
  for (const auto& layer : fx.layers) {
    fault::FaultSpec spec;
    spec.kind = fault::FaultKind::kStuckAt;
    spec.injection_rate = 0.1;
    fault::FaultVectorEntry entry;
    entry.layer_name = layer.layer_name;
    entry.kind = fault::FaultKind::kStuckAt;
    entry.mask = gen.generate(spec, rng);
    file.add(std::move(entry));
  }
  const std::string path = ::testing::TempDir() + "/flim_campaign.bin";
  file.save(path);

  bnn::FlimEngine from_memory(file);
  bnn::FlimEngine from_disk(fault::FaultVectorFile::load(path));
  EXPECT_DOUBLE_EQ(eval_with_engine(from_memory), eval_with_engine(from_disk));
  std::filesystem::remove(path);
}

// Cross-validation on the full model: FLIM product-term faults equal the
// device-level X-Fault path (tiny eval set -- the device engine is slow by
// design).
TEST(EndToEnd, DeviceEngineMatchesFlimOnModel) {
  const Fixture& fx = Fixture::instance();
  const data::Batch tiny = data::load_batch(fx.dataset, 1200, 2);

  fault::FaultGenerator gen({8, 8});  // gate-grid masks: 64 gates per layer
  core::Rng rng(11);
  bnn::FlimEngine flim;
  xfault::DeviceEngineConfig cfg;
  cfg.crossbar.rows = 8;
  cfg.crossbar.cols = 32;
  xfault::DeviceEngine device(cfg);

  for (const auto& layer : fx.layers) {
    fault::FaultSpec spec;
    spec.kind = fault::FaultKind::kStuckAt;
    spec.injection_rate = 0.15;
    spec.granularity = fault::FaultGranularity::kProductTerm;
    fault::FaultVectorEntry entry;
    entry.layer_name = layer.layer_name;
    entry.kind = fault::FaultKind::kStuckAt;
    entry.granularity = fault::FaultGranularity::kProductTerm;
    entry.mask = gen.generate(spec, rng);
    flim.set_layer_fault(entry);
    device.set_layer_fault(entry);
  }

  const FloatTensor flim_logits = fx.model.forward(tiny.images, flim);
  const FloatTensor device_logits = fx.model.forward(tiny.images, device);
  EXPECT_EQ(flim_logits, device_logits);
}

// Campaign runner drives the whole protocol reproducibly.
TEST(EndToEnd, CampaignIsReproducible) {
  core::CampaignConfig cfg;
  cfg.repetitions = 3;
  cfg.master_seed = 2024;
  auto metric = [&](std::uint64_t seed) {
    return eval_with_fault(fault::FaultKind::kBitFlip, 0.1,
                           fault::FaultGranularity::kOutputElement, seed);
  };
  const core::Summary a = core::run_repeated(cfg, metric);
  const core::Summary b = core::run_repeated(cfg, metric);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_EQ(a.count, 3u);
}

}  // namespace
}  // namespace flim

// Concurrency stress suite. These tests hammer every mutex-guarded surface
// of the library from many threads at once; they pass trivially in a plain
// build and earn their keep under -DFLIM_SANITIZE=thread, where the TSan CI
// job turns any data race or lock-discipline slip into a hard failure. Keep
// iteration counts modest: TSan runs ~5-15x slower than native.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "core/rng.hpp"
#include "core/thread_pool.hpp"
#include "exp/eval_point.hpp"
#include "exp/store.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_registry.hpp"
#include "fleet/lease.hpp"
#include "serve/batcher.hpp"
#include "serve/plan_cache.hpp"

namespace flim {
namespace {

TEST(ThreadPoolConcurrency, ParallelForHammer) {
  core::ThreadPool pool(8);
  for (int round = 0; round < 4; ++round) {
    constexpr std::size_t kN = 2000;
    std::vector<std::atomic<int>> visits(kN);
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(kN, [&](std::size_t i) {
      visits[i].fetch_add(1, std::memory_order_relaxed);
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "index " << i;
    }
    EXPECT_EQ(sum.load(), kN * (kN - 1) / 2);
  }
}

TEST(ThreadPoolConcurrency, SlottedNeverSharesASlot) {
  core::ThreadPool pool(8);
  for (int round = 0; round < 4; ++round) {
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<bool>> occupied(pool.size());
    std::vector<std::atomic<int>> visits(kN);
    pool.parallel_for_slotted(kN, [&](std::size_t i, std::size_t slot) {
      ASSERT_LT(slot, pool.size());
      // Two concurrent invocations holding the same slot would both see
      // `false` here; exchange makes that a deterministic test failure (and
      // the unsynchronized per-slot workspaces it models would be a race).
      ASSERT_FALSE(occupied[slot].exchange(true)) << "slot " << slot;
      visits[i].fetch_add(1, std::memory_order_relaxed);
      occupied[slot].store(false);
    });
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPoolConcurrency, SubmitFromManyExternalThreads) {
  core::ThreadPool pool(4);
  std::atomic<int> done{0};
  std::vector<std::thread> producers;
  producers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&] {
      std::vector<std::future<void>> futures;
      futures.reserve(50);
      for (int i = 0; i < 50; ++i) {
        futures.push_back(pool.submit([&] { done.fetch_add(1); }));
      }
      for (auto& f : futures) f.get();
    });
  }
  for (auto& p : producers) p.join();
  EXPECT_EQ(done.load(), 4 * 50);
}

// Builds a realized product-term entry whose active-component signature
// depends on the execution index: bitflip is static, dynamic(period=2)
// fires on odd executions only.
fault::FaultVectorEntry make_term_entry(std::uint64_t seed) {
  const fault::FaultStack stack =
      fault::parse_fault_expr("bitflip(rate=0.2)+dynamic(rate=0.3,period=2)");
  fault::RealizeContext ctx;
  core::Rng rng(seed);
  return stack.realize_entry("conv1", fault::FaultGranularity::kProductTerm,
                             ctx, rng);
}

TEST(FaultInjectorConcurrency, TermMaskCacheUnderContention) {
  constexpr std::int64_t kChannels = 8;
  constexpr std::int64_t kK = 16;

  // Serial reference: one injector queried serially gives the ground-truth
  // planes per signature.
  fault::FaultInjector reference(make_term_entry(7));
  const fault::TermMasks* ref_even = reference.term_masks(kChannels, kK, 0);
  const fault::TermMasks* ref_odd = reference.term_masks(kChannels, kK, 1);
  ASSERT_NE(ref_even, nullptr);
  ASSERT_NE(ref_odd, nullptr);
  ASSERT_NE(ref_even, ref_odd);

  fault::FaultInjector injector(make_term_entry(7));
  constexpr int kThreads = 8;
  constexpr int kQueries = 200;
  std::vector<const fault::TermMasks*> even_ptr(kThreads);
  std::vector<const fault::TermMasks*> odd_ptr(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int q = 0; q < kQueries; ++q) {
        // Interleave identical and distinct signatures across threads.
        const std::int64_t execution = (t + q) % 2;
        const fault::TermMasks* masks =
            injector.term_masks(kChannels, kK, execution);
        ASSERT_NE(masks, nullptr);
        if (execution == 0) {
          even_ptr[t] = masks;
        } else {
          odd_ptr[t] = masks;
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  // One cache entry per signature: every thread saw the same pointer.
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(even_ptr[t], even_ptr[0]);
    EXPECT_EQ(odd_ptr[t], odd_ptr[0]);
  }
  EXPECT_NE(even_ptr[0], odd_ptr[0]);

  // And the concurrently built planes match the serial reference bit for
  // bit.
  const auto planes_equal = [](const tensor::BitMatrix& a,
                               const tensor::BitMatrix& b) {
    if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
    for (std::int64_t r = 0; r < a.rows(); ++r) {
      for (std::int64_t c = 0; c < a.cols(); ++c) {
        if (a.get(r, c) != b.get(r, c)) return false;
      }
    }
    return true;
  };
  EXPECT_TRUE(planes_equal(even_ptr[0]->flip, ref_even->flip));
  EXPECT_TRUE(planes_equal(even_ptr[0]->sa0, ref_even->sa0));
  EXPECT_TRUE(planes_equal(even_ptr[0]->sa1, ref_even->sa1));
  EXPECT_TRUE(planes_equal(odd_ptr[0]->flip, ref_odd->flip));
  EXPECT_TRUE(planes_equal(odd_ptr[0]->sa0, ref_odd->sa0));
  EXPECT_TRUE(planes_equal(odd_ptr[0]->sa1, ref_odd->sa1));
}

// A deterministic, allocation-light stand-in for an inference metric; the
// value depends only on the seed, as campaign metrics must.
double seeded_metric(std::uint64_t seed) {
  core::Rng rng(seed);
  double acc = 0.0;
  for (int i = 0; i < 64; ++i) acc += rng.uniform_double();
  return acc / 64.0;
}

TEST(CampaignConcurrency, PooledRunRepeatedBitIdenticalToSerial) {
  core::CampaignConfig serial;
  serial.repetitions = 96;
  serial.master_seed = 1234;
  const core::Summary expect = core::run_repeated(
      serial, [](std::uint64_t seed) { return seeded_metric(seed); });

  core::ThreadPool pool(8);
  core::CampaignConfig pooled = serial;
  pooled.pool = &pool;
  for (int round = 0; round < 8; ++round) {
    const core::Summary got = core::run_repeated(
        pooled, [](std::uint64_t seed, std::size_t /*worker*/) {
          return seeded_metric(seed);
        });
    EXPECT_EQ(got.mean, expect.mean);
    EXPECT_EQ(got.stddev, expect.stddev);
    EXPECT_EQ(got.min, expect.min);
    EXPECT_EQ(got.max, expect.max);
    EXPECT_EQ(got.count, expect.count);
  }
}

TEST(CampaignConcurrency, PooledGridSweepBitIdenticalToSerial) {
  const std::vector<core::SweepAxis> axes = {
      {"rate", {{0.0, "0"}, {0.1, "0.1"}, {0.2, "0.2"}}},
      {"layer", {{0.0, "conv1"}, {1.0, "conv2"}}},
  };
  const auto metric = [](const std::vector<double>& xs, std::uint64_t seed,
                         std::size_t /*worker*/) {
    return seeded_metric(seed) + xs[0] * 0.01 + xs[1] * 0.001;
  };

  core::CampaignConfig serial;
  serial.repetitions = 24;
  serial.master_seed = 99;
  const std::vector<core::GridPoint> expect =
      core::run_grid_sweep(serial, axes, metric);

  core::ThreadPool pool(8);
  core::CampaignConfig pooled = serial;
  pooled.pool = &pool;
  const std::vector<core::GridPoint> got =
      core::run_grid_sweep(pooled, axes, metric);

  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].coords, expect[i].coords);
    EXPECT_EQ(got[i].labels, expect[i].labels);
    EXPECT_EQ(got[i].metric.mean, expect[i].metric.mean);
    EXPECT_EQ(got[i].metric.stddev, expect[i].metric.stddev);
  }
}

// Minimal registrable model for the lookup-during-add stress: realize()
// marks nothing, so it never perturbs campaign numbers even if leaked into
// other suites (registration is process-global).
class NullModel : public fault::FaultModel {
 public:
  explicit NullModel(std::string name) {
    info_.name = std::move(name);
    info_.summary = "concurrency-test model (no faults)";
    info_.time_semantics = "static";
  }

  const fault::ModelInfo& info() const override { return info_; }

  fault::RealizedFault realize(const fault::ModelParams& params,
                               const fault::RealizeContext& ctx,
                               core::Rng& /*rng*/) const override {
    fault::RealizedFault fault;
    fault.model = info_.name;
    fault.params = params.values();
    fault.mask = fault::FaultMask(ctx.grid.rows, ctx.grid.cols);
    return fault;
  }

 private:
  fault::ModelInfo info_;
};

TEST(FaultRegistryConcurrency, LookupsRaceRegistration) {
  fault::FaultRegistry& registry = fault::FaultRegistry::instance();
  constexpr int kModels = 32;
  std::atomic<bool> stop{false};
  std::atomic<int> found{0};

  // Readers resolve built-in models (the campaign hot path) and poll for
  // the models being registered concurrently.
  std::vector<std::thread> readers;
  readers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        EXPECT_NE(registry.find("bitflip"), nullptr);
        EXPECT_EQ(registry.get("stuckat").info().name, "stuckat");
        EXPECT_GE(registry.models().size(), 6u);
        if (registry.find("concurrency_test_model_17") != nullptr) {
          found.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  for (int i = 0; i < kModels; ++i) {
    registry.add(std::make_unique<NullModel>(
        "concurrency_test_model_" + std::to_string(i)));
  }
  stop.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();

  for (int i = 0; i < kModels; ++i) {
    const std::string name = "concurrency_test_model_" + std::to_string(i);
    EXPECT_NE(registry.find(name), nullptr) << name;
  }
}

exp::RunHeader make_test_header(std::size_t total_points) {
  exp::RunHeader header;
  header.name = "concurrency";
  header.backend = "flim";
  header.fingerprint = "deadbeefdeadbeef";
  header.library_version = "test";
  header.master_seed = 42;
  header.repetitions = 3;
  header.total_points = total_points;
  header.axis_names = {"rate"};
  header.axis_sizes = {total_points};
  return header;
}

exp::ScenarioPoint make_test_point(std::size_t flat) {
  exp::ScenarioPoint point;
  point.values = {static_cast<double>(flat) * 0.01};
  point.labels = {std::to_string(flat)};
  point.metric.mean = static_cast<double>(flat);
  point.metric.count = 3;
  return point;
}

TEST(RunStoreConcurrency, ParallelAppendThenResume) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "flim_concurrency_store.jsonl")
          .string();
  constexpr std::size_t kPoints = 64;
  constexpr int kThreads = 8;

  {
    exp::RunStoreWriter writer(path, make_test_header(kPoints),
                               /*fsync_each_point=*/false);
    // Each thread appends a disjoint slice; lines may interleave in any
    // order but must never tear.
    std::vector<std::thread> writers;
    writers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&, t] {
        for (std::size_t i = static_cast<std::size_t>(t); i < kPoints / 2;
             i += kThreads) {
          writer.append(i, make_test_point(i));
        }
      });
    }
    for (auto& w : writers) w.join();
  }

  exp::RunFile half = exp::RunFile::load(path);
  EXPECT_FALSE(half.truncated_tail);
  EXPECT_EQ(half.points.size(), kPoints / 2);
  for (std::size_t i = 0; i < kPoints / 2; ++i) {
    EXPECT_TRUE(half.has(i)) << "missing point " << i;
  }

  // Simulate a crash mid-write, then a parallel resumed second half.
  {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"point\": 999, \"torn", f);
    std::fclose(f);
  }
  exp::RunFile torn = exp::RunFile::load(path);
  EXPECT_TRUE(torn.truncated_tail);
  ASSERT_EQ(torn.points.size(), kPoints / 2);

  {
    exp::RunStoreWriter writer = exp::RunStoreWriter::resume(
        path, torn.valid_prefix_bytes, /*fsync_each_point=*/false);
    std::vector<std::thread> writers;
    writers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&, t] {
        for (std::size_t i = kPoints / 2 + static_cast<std::size_t>(t);
             i < kPoints; i += kThreads) {
          writer.append(i, make_test_point(i));
        }
      });
    }
    for (auto& w : writers) w.join();
  }

  exp::RunFile full = exp::RunFile::load(path);
  EXPECT_FALSE(full.truncated_tail);
  EXPECT_EQ(full.points.size(), kPoints);
  for (std::size_t i = 0; i < kPoints; ++i) {
    EXPECT_TRUE(full.has(i)) << "missing point " << i;
  }
  for (const exp::StoredPoint& sp : full.points) {
    EXPECT_EQ(sp.point.metric.mean, static_cast<double>(sp.flat_index));
  }
  std::filesystem::remove(path);
}

TEST(LeaseTableConcurrency, RacingAcquirersNeverShareAShard) {
  // Many workers hammer acquire() at once; every shard must be granted to
  // exactly one of them and every fencing token must be unique.
  constexpr int kShards = 16;
  constexpr int kWorkers = 8;
  fleet::LeaseTable table(kShards, /*ttl_ms=*/1000000);
  std::vector<std::vector<fleet::LeaseTable::Grant>> grants(kWorkers);
  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      while (true) {
        const auto grant = table.acquire("w" + std::to_string(w), 0);
        if (!grant) break;
        grants[static_cast<std::size_t>(w)].push_back(*grant);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  std::vector<int> owners(kShards, 0);
  std::set<std::uint64_t> tokens;
  for (const auto& per_worker : grants) {
    for (const fleet::LeaseTable::Grant& g : per_worker) {
      ++owners[static_cast<std::size_t>(g.shard_index)];
      EXPECT_TRUE(tokens.insert(g.token).second) << "duplicate token";
    }
  }
  for (int shard = 0; shard < kShards; ++shard) {
    EXPECT_EQ(owners[static_cast<std::size_t>(shard)], 1) << "shard " << shard;
  }
}

TEST(LeaseTableConcurrency, ExpiryReleaseAndFencingUnderContention) {
  // One shard, many claimants racing at a time past every TTL: each round,
  // exactly one thread wins the re-lease, and the loser's stale token must
  // be rejected by heartbeat and complete alike.
  fleet::LeaseTable table(1, /*ttl_ms=*/10);
  const auto first = table.acquire("w0", /*now_ms=*/0);
  ASSERT_TRUE(first.has_value());

  constexpr int kThreads = 8;
  constexpr int kRounds = 50;
  std::atomic<int> total_wins{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 1; round <= kRounds; ++round) {
        // Time leaps far past the previous round's deadline, so the lease
        // is expired for every contender simultaneously.
        const std::int64_t now = static_cast<std::int64_t>(round) * 1000;
        const auto grant = table.acquire("t" + std::to_string(t), now);
        if (grant) {
          total_wins.fetch_add(1);
          // A heartbeat with the fresh token may already be fenced off if a
          // later-round thread re-leased in between; either answer is legal,
          // it just must not race.
          (void)table.heartbeat(0, grant->token, 1, 2, now);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Every round re-leases the shard exactly once (the initial grant's
  // deadline has long passed by round 1's timestamp).
  EXPECT_EQ(total_wins.load(), kRounds);
  EXPECT_EQ(table.expired_releases(), static_cast<std::size_t>(kRounds));
  // The original holder's token is long fenced off.
  EXPECT_FALSE(table.heartbeat(0, first->token, 1, 2, kRounds * 1000));
  EXPECT_FALSE(table.complete(0, first->token));
  // The last winner can still complete; a second completion is refused.
  const auto last = table.snapshot().front();
  EXPECT_TRUE(table.complete(0, last.token));
  EXPECT_FALSE(table.complete(0, last.token));
  EXPECT_TRUE(table.all_done());
}

TEST(LeaseTableConcurrency, HeartbeatsRaceAcquirersSafely) {
  // Heartbeat spam on live leases while other threads race acquire() over
  // a mixed expired/fresh table: exercises every lock path concurrently.
  constexpr int kShards = 4;
  fleet::LeaseTable table(kShards, /*ttl_ms=*/50);
  std::vector<fleet::LeaseTable::Grant> initial;
  for (int i = 0; i < kShards; ++i) {
    const auto g = table.acquire("seed", 0);
    ASSERT_TRUE(g.has_value());
    initial.push_back(*g);
  }
  std::atomic<bool> stop{false};
  std::thread beater([&] {
    // The beater's fake clock saturates at 1000, so its refreshes can push
    // a deadline no further than 1050 -- racers with later timestamps are
    // guaranteed to find the leases expired eventually.
    std::int64_t now = 0;
    while (!stop.load()) {
      for (const auto& g : initial) {
        (void)table.heartbeat(g.shard_index, g.token, 1, 1, now);
      }
      if (now < 1000) now += 7;
    }
  });
  std::vector<std::thread> acquirers;
  for (int t = 0; t < 4; ++t) {
    acquirers.emplace_back([&, t] {
      for (std::int64_t now = 0; now < 5000; now += 13) {
        const auto g = table.acquire("racer" + std::to_string(t), now);
        if (g) (void)table.complete(g->shard_index, g->token);
        (void)table.snapshot();
        (void)table.done_count();
      }
    });
  }
  for (std::thread& t : acquirers) t.join();
  stop.store(true);
  beater.join();
  // Every racer sweeps its clock well past the beater's 1050 ceiling, so
  // each shard is eventually re-leased from the seed holder and completed.
  EXPECT_TRUE(table.all_done());
}

// ---------------------------------------------------------------------------
// Serving layer: plan-cache and batcher races (semantics live in serve_test;
// here the same surfaces are hammered from many threads for the TSan job).

exp::EvalPointSpec serve_race_spec(const std::string& fault_expr) {
  exp::EvalPointSpec spec;
  spec.workload.model = "lenet";
  spec.workload.eval_images = 16;
  spec.workload.epochs = 1;
  spec.workload.train_samples = 32;
  // ctest runs each test in its own concurrent process; a process-unique
  // weight cache keeps parallel trainings from clobbering each other.
#if defined(__unix__) || defined(__APPLE__)
  const std::string tag = std::to_string(::getpid());
#else
  const std::string tag = "solo";
#endif
  spec.workload.weights_dir =
      (std::filesystem::temp_directory_path() /
       ("flim_concurrency_serve_weights_" + tag))
          .string();
  spec.fault_expr = fault_expr;
  spec.repetitions = 1;
  spec.master_seed = 7;
  return spec;
}

TEST(PlanCacheConcurrency, RacingGetOrCreateOfOneKeyBuildsOnce) {
  serve::PlanCache cache(4, 1);
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<serve::CacheEntry>> entries(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Two spellings of one stack: every thread must land on one entry.
      const std::string expr =
          (t % 2 == 0) ? "stuckat(rate=2e-3)" : "stuckat(rate=0.002)";
      entries[static_cast<std::size_t>(t)] =
          cache.get_or_create(serve_race_spec(expr));
    });
  }
  for (auto& th : threads) th.join();

  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(entries[static_cast<std::size_t>(t)].get(), entries[0].get());
  }
  const serve::CacheCounters c = cache.counters();
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.hits, static_cast<std::uint64_t>(kThreads - 1));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCacheConcurrency, DistinctKeysBuildConcurrently) {
  const std::vector<std::string> exprs = {
      "stuckat(rate=1e-3)", "bitflip(rate=1e-3)", "dynamic(rate=1e-3)",
      "stuckat(rate=2e-3)"};
  serve::PlanCache cache(exprs.size(), 1);
  std::vector<std::shared_ptr<serve::CacheEntry>> entries(exprs.size());
  std::vector<std::thread> threads;
  threads.reserve(exprs.size());
  for (std::size_t t = 0; t < exprs.size(); ++t) {
    threads.emplace_back([&, t] {
      entries[t] = cache.get_or_create(serve_race_spec(exprs[t]));
    });
  }
  for (auto& th : threads) th.join();

  std::set<const serve::CacheEntry*> distinct;
  for (const auto& e : entries) {
    ASSERT_NE(e, nullptr);
    distinct.insert(e.get());
  }
  EXPECT_EQ(distinct.size(), exprs.size());
  EXPECT_EQ(cache.counters().misses, exprs.size());
  EXPECT_EQ(cache.size(), exprs.size());
}

TEST(PlanCacheConcurrency, EvictionRacesInFlightEvaluation) {
  // Capacity one: every distinct key evicts the previous entry while a
  // holder thread keeps evaluating its (possibly evicted) entry. The
  // shared_ptr keeps the entry alive and its answers stable.
  serve::PlanCache cache(1, 1);
  const exp::EvalPointSpec held_spec = serve_race_spec("stuckat(rate=2e-3)");
  const auto held = cache.get_or_create(held_spec);
  const std::string expect =
      held->evaluate_payload(held_spec.repetitions, held_spec.master_seed,
                             nullptr);

  std::atomic<bool> stop{false};
  std::thread evaluator([&] {
    while (!stop.load(std::memory_order_acquire)) {
      EXPECT_EQ(held->evaluate_payload(held_spec.repetitions,
                                       held_spec.master_seed, nullptr),
                expect);
    }
  });
  const std::vector<std::string> churn = {
      "bitflip(rate=1e-3)", "dynamic(rate=1e-3)", "stuckat(rate=1e-3)"};
  for (int round = 0; round < 4; ++round) {
    for (const std::string& expr : churn) {
      (void)cache.get_or_create(serve_race_spec(expr));
    }
  }
  stop.store(true, std::memory_order_release);
  evaluator.join();

  EXPECT_EQ(cache.size(), 1u);
  EXPECT_GE(cache.counters().evictions, 1u);
  // The long-evicted held entry still answers correctly.
  EXPECT_EQ(held->evaluate_payload(held_spec.repetitions,
                                   held_spec.master_seed, nullptr),
            expect);
}

TEST(BatcherConcurrency, SubmittersRaceTheConsumerAndDrain) {
  serve::PlanCache cache(2, 1);
  const exp::EvalPointSpec spec = serve_race_spec("stuckat(rate=2e-3)");
  const auto entry = cache.get_or_create(spec);

  serve::BatcherOptions options;
  options.queue_capacity = 4;  // small: the busy path gets exercised too
  serve::Batcher batcher(options);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 8;
  std::atomic<int> accepted{0};
  std::atomic<int> busy{0};
  std::vector<std::shared_ptr<serve::Ticket>> tickets;
  core::Mutex tickets_mutex;
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        auto ticket = std::make_shared<serve::Ticket>();
        const serve::SubmitStatus status = batcher.submit(
            entry, spec.repetitions, spec.master_seed, -1, ticket);
        if (status == serve::SubmitStatus::kAccepted) {
          accepted.fetch_add(1);
          const core::MutexLock lock(tickets_mutex);
          tickets.push_back(std::move(ticket));
        } else {
          busy.fetch_add(1);
        }
      }
    });
  }
  for (auto& s : submitters) s.join();
  // Drain races the tail of consumption; every accepted ticket completes.
  batcher.drain();
  for (const auto& ticket : tickets) {
    ticket->wait();
    EXPECT_TRUE(ticket->ok());
  }
  EXPECT_EQ(accepted.load() + busy.load(), kThreads * kPerThread);

  const serve::BatcherCounters c = batcher.counters();
  EXPECT_EQ(c.completed, static_cast<std::uint64_t>(accepted.load()));
  EXPECT_EQ(c.rejected_busy, static_cast<std::uint64_t>(busy.load()));
  // Submits after drain are refused.
  EXPECT_EQ(batcher.submit(entry, spec.repetitions, spec.master_seed, -1,
                           std::make_shared<serve::Ticket>()),
            serve::SubmitStatus::kDraining);
}

}  // namespace
}  // namespace flim

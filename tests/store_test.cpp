// Tests for the durable campaign store: spec fingerprints, run-file
// round-trips, kill-and-resume determinism (byte-identical CSV after a torn
// write), deterministic sharding, and shard-file merging.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "exp/store.hpp"

namespace flim::exp {
namespace {

/// ctest runs every test in its own concurrent process, so all scratch
/// paths (run files, weight cache) are process-unique to keep the suite
/// parallel-safe.
std::string process_tag() {
#if defined(__unix__) || defined(__APPLE__)
  static const std::string tag = std::to_string(::getpid());
#else
  static const std::string tag = "solo";
#endif
  return tag;
}

ScenarioSpec tiny_scenario() {
  ScenarioSpec s;
  s.name = "store-test";
  s.workload.model = "lenet";
  s.workload.eval_images = 16;
  s.workload.epochs = 1;
  s.workload.train_samples = 32;
  s.workload.weights_dir =
      ::testing::TempDir() + "flim_store_weights_" + process_tag();
  s.workload.measure_clean_accuracy = true;
  s.axes = {rate_axis({0.0, 0.15, 0.3}), layers_axis({"conv1", "combined"})};
  s.repetitions = 2;
  s.master_seed = 11;
  return s;
}

const Workload& tiny_workload() {
  static const Workload* w =
      new Workload(load_workload(tiny_scenario().workload));
  return *w;
}

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "flim_store_" + process_tag() + "_" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

/// The uninterrupted reference run of the tiny scenario, with its CSV and
/// run-file bytes (computed once; every durability test compares against
/// these).
struct Reference {
  ScenarioResult result;
  std::string csv;
  std::string run_bytes;
  std::string path;
};

const Reference& reference_run() {
  static const Reference* ref = [] {
    auto* r = new Reference;
    r->path = tmp_path("reference.run.jsonl");
    std::filesystem::remove(r->path);
    StoreOptions store;
    store.store_path = r->path;
    r->result = ScenarioRunner(tiny_scenario()).run(tiny_workload(), store);
    r->csv = r->result.to_table().to_csv();
    r->run_bytes = read_file(r->path);
    return r;
  }();
  return *ref;
}

// ---------------------------------------------------------------------------
// Fingerprints

TEST(SpecFingerprint, IgnoresExecutionOnlyKnobs) {
  const ScenarioSpec base = tiny_scenario();
  ScenarioSpec same = base;
  same.jobs = 8;
  same.name = "renamed";
  same.workload.verbose = true;
  same.workload.weights_dir = "/elsewhere";
  same.workload.force_retrain = true;
  EXPECT_EQ(spec_fingerprint(base), spec_fingerprint(same));
  EXPECT_EQ(spec_fingerprint(base).size(), 16u);
}

TEST(SpecFingerprint, SeesEveryNumberChangingField) {
  const ScenarioSpec base = tiny_scenario();
  auto differs = [&](const ScenarioSpec& other) {
    return spec_fingerprint(other) != spec_fingerprint(base);
  };
  ScenarioSpec s = base;
  s.axes[0] = rate_axis({0.0, 0.15, 0.31});
  EXPECT_TRUE(differs(s));
  s = base;
  s.engine.backend = Backend::kDevice;
  EXPECT_TRUE(differs(s));
  s = base;
  s.repetitions += 1;
  EXPECT_TRUE(differs(s));
  s = base;
  s.master_seed += 1;
  EXPECT_TRUE(differs(s));
  s = base;
  s.fault.kind = fault::FaultKind::kStuckAt;
  EXPECT_TRUE(differs(s));
  s = base;
  s.workload.eval_images += 1;
  EXPECT_TRUE(differs(s));
  s = base;
  s.grid = {32, 32};
  EXPECT_TRUE(differs(s));
}

TEST(SpecFingerprint, CanonicalizesFaultExpressions) {
  const ScenarioSpec base = tiny_scenario();
  // A legacy spec's canonical form carries no expression field, which is
  // what keeps pre-expression fingerprints (and old run files) valid.
  EXPECT_EQ(canonical_spec(base).find("fault.expr"), std::string::npos);

  ScenarioSpec expr = base;
  expr.fault_expr = "stuckat(sa1=0.70,rate=5.0e-4)+drift(tau=2000)";
  EXPECT_NE(spec_fingerprint(expr), spec_fingerprint(base));
  EXPECT_NE(canonical_spec(expr).find(
                "fault.expr=stuckat(rate=5e-04,sa1=0.7)+drift(tau=2000)"),
            std::string::npos);

  // Two spellings of the same stack (whitespace, param order, number
  // format) fingerprint identically -- either one resumes the other's run
  // files.
  ScenarioSpec respelled = base;
  respelled.fault_expr = " stuckat( rate = 0.0005 , sa1 = 0.7 ) + drift( "
                         "tau = 2000.0 ) ";
  EXPECT_EQ(spec_fingerprint(expr), spec_fingerprint(respelled));

  // Expression axes are fingerprinted through their canonical text.
  ScenarioSpec with_axis = base;
  with_axis.axes = {fault_expr_axis({"drift(tau=100,rate=0.1)"})};
  ScenarioSpec with_axis2 = base;
  with_axis2.axes = {fault_expr_axis({"drift(rate=0.10,tau=1e2)"})};
  EXPECT_EQ(spec_fingerprint(with_axis), spec_fingerprint(with_axis2));
  EXPECT_NE(spec_fingerprint(with_axis), spec_fingerprint(base));
}

// ---------------------------------------------------------------------------
// Run-file round-trip

TEST(RunFile, HeaderRoundTripsThroughDisk) {
  const ScenarioSpec spec = tiny_scenario();
  const RunHeader header = make_run_header(spec, 0.75, 1, 4);
  const std::string path = tmp_path("header.run.jsonl");
  { RunStoreWriter writer(path, header); }
  const RunFile run = RunFile::load(path);
  EXPECT_EQ(run.header.format, kRunFormatVersion);
  EXPECT_EQ(run.header.name, spec.name);
  EXPECT_EQ(run.header.backend, "flim");
  EXPECT_EQ(run.header.fingerprint, spec_fingerprint(spec));
  EXPECT_EQ(run.header.master_seed, spec.master_seed);
  EXPECT_EQ(run.header.repetitions, spec.repetitions);
  EXPECT_EQ(run.header.total_points, 6u);
  EXPECT_EQ(run.header.shard_index, 1);
  EXPECT_EQ(run.header.shard_count, 4);
  EXPECT_DOUBLE_EQ(run.header.clean_accuracy, 0.75);
  EXPECT_EQ(run.header.axis_names,
            (std::vector<std::string>{"rate", "layer"}));
  EXPECT_EQ(run.header.axis_sizes, (std::vector<std::size_t>{3, 2}));
  EXPECT_TRUE(run.points.empty());
  EXPECT_FALSE(run.truncated_tail);
  std::filesystem::remove(path);
}

TEST(RunFile, PointsRoundTripBitExactly) {
  const Reference& ref = reference_run();
  const RunFile run = RunFile::load(ref.path);
  ASSERT_EQ(run.points.size(), ref.result.points.size());
  for (std::size_t i = 0; i < run.points.size(); ++i) {
    const StoredPoint& stored = run.points[i];
    EXPECT_EQ(stored.flat_index, ref.result.flat_indices[i]);
    const ScenarioPoint& expect = ref.result.points[i];
    EXPECT_EQ(stored.point.values, expect.values);
    EXPECT_EQ(stored.point.labels, expect.labels);
    // Bit-exact doubles, not just approximately equal: resume and merge
    // re-emit these into CSV.
    EXPECT_EQ(stored.point.metric.mean, expect.metric.mean);
    EXPECT_EQ(stored.point.metric.stddev, expect.metric.stddev);
    EXPECT_EQ(stored.point.metric.min, expect.metric.min);
    EXPECT_EQ(stored.point.metric.max, expect.metric.max);
    EXPECT_EQ(stored.point.metric.count, expect.metric.count);
  }
  EXPECT_TRUE(run.has(0));
  EXPECT_FALSE(run.has(99));
}

TEST(RunFile, LoadRejectsGarbage) {
  const std::string path = tmp_path("garbage.run.jsonl");
  write_file(path, "not a run file\n");
  EXPECT_THROW(RunFile::load(path), std::invalid_argument);
  EXPECT_THROW(RunFile::load(tmp_path("does_not_exist.run.jsonl")),
               std::invalid_argument);
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Corrupt-tail recovery

/// The reference run file cut after the header and two point lines, with a
/// torn third point line appended (a crash mid-write).
std::string torn_copy(const std::string& name) {
  const Reference& ref = reference_run();
  std::size_t pos = 0;
  for (int lines = 0; lines < 3; ++lines) {
    pos = ref.run_bytes.find('\n', pos) + 1;
  }
  const std::string path = tmp_path(name);
  write_file(path, ref.run_bytes.substr(0, pos) + "{\"point\": 2, \"val");
  return path;
}

TEST(RunFile, CorruptTailIsDroppedNotFatal) {
  const std::string path = torn_copy("torn.run.jsonl");
  const RunFile run = RunFile::load(path);
  EXPECT_TRUE(run.truncated_tail);
  EXPECT_EQ(run.points.size(), 2u);
  EXPECT_LT(run.valid_prefix_bytes, std::filesystem::file_size(path));
  // The valid prefix ends exactly on the last complete line.
  EXPECT_EQ(read_file(path).compare(0, run.valid_prefix_bytes,
                                    reference_run().run_bytes, 0,
                                    run.valid_prefix_bytes),
            0);
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Kill-and-resume determinism

TEST(RunStore, KillAndResumeIsByteIdentical) {
  const Reference& ref = reference_run();
  const std::string path = torn_copy("resume.run.jsonl");

  StoreOptions store;
  store.store_path = path;
  store.resume_from = path;
  int fresh = 0;
  const ScenarioResult resumed = ScenarioRunner(tiny_scenario())
                                     .run(tiny_workload(), store,
                                          [&](const ScenarioPoint&) {
                                            ++fresh;
                                          });
  // Two of six points were restored; only the rest were re-evaluated.
  EXPECT_EQ(fresh, 4);
  EXPECT_TRUE(resumed.complete());
  // The resumed CSV and the repaired run file match the uninterrupted run
  // byte for byte.
  EXPECT_EQ(resumed.to_table().to_csv(), ref.csv);
  EXPECT_EQ(read_file(path), ref.run_bytes);
  std::filesystem::remove(path);
}

TEST(RunStore, ResumeIntoFreshStoreCopiesRestoredPoints) {
  const std::string src = torn_copy("resume_src.run.jsonl");
  const std::string dst = tmp_path("resume_dst.run.jsonl");
  std::filesystem::remove(dst);
  StoreOptions store;
  store.resume_from = src;
  store.store_path = dst;
  ScenarioRunner(tiny_scenario()).run(tiny_workload(), store);
  // The new store is self-contained: restored + fresh points.
  EXPECT_EQ(read_file(dst), reference_run().run_bytes);
  std::filesystem::remove(src);
  std::filesystem::remove(dst);
}

TEST(RunStore, ResumeFromMissingFileIsAFreshRun) {
  const std::string path = tmp_path("fresh.run.jsonl");
  std::filesystem::remove(path);
  StoreOptions store;
  store.store_path = path;
  store.resume_from = path;
  const ScenarioResult result =
      ScenarioRunner(tiny_scenario()).run(tiny_workload(), store);
  EXPECT_TRUE(result.complete());
  EXPECT_EQ(read_file(path), reference_run().run_bytes);
  std::filesystem::remove(path);
}

TEST(RunStore, ResumeFromTornHeaderIsAFreshRun) {
  // A crash between creating the run file and durably writing its header
  // leaves an empty file or a partial, newline-less header line; resuming
  // must recover (fresh start), not abort until someone deletes the file.
  for (const std::string& residue : {std::string(), std::string("{\"flim_")}) {
    const std::string path = tmp_path("torn_header.run.jsonl");
    write_file(path, residue);
    StoreOptions store;
    store.store_path = path;
    store.resume_from = path;
    const ScenarioResult result =
        ScenarioRunner(tiny_scenario()).run(tiny_workload(), store);
    EXPECT_TRUE(result.complete());
    EXPECT_EQ(read_file(path), reference_run().run_bytes);
    std::filesystem::remove(path);
  }
  // Anything that is not unambiguously our own torn header stays a loud
  // error: it is some other file, and "recovering" would truncate it --
  // whether or not it happens to contain a newline.
  for (const std::string& content :
       {std::string("column_a,column_b\n1,2\n"),
        std::string("single line, no newline")}) {
    const std::string path = tmp_path("not_a_run_file.jsonl");
    write_file(path, content);
    StoreOptions store;
    store.store_path = path;
    store.resume_from = path;
    EXPECT_THROW(ScenarioRunner(tiny_scenario()).run(tiny_workload(), store),
                 std::invalid_argument);
    EXPECT_EQ(read_file(path), content);  // untouched
    std::filesystem::remove(path);
  }
}

TEST(RunStore, ResumeRejectsMismatchedSpec) {
  const std::string path = torn_copy("mismatch.run.jsonl");
  ScenarioSpec other = tiny_scenario();
  other.fault.kind = fault::FaultKind::kStuckAt;
  StoreOptions store;
  store.resume_from = path;
  EXPECT_THROW(ScenarioRunner(other).run(tiny_workload(), store),
               std::invalid_argument);
  std::filesystem::remove(path);
}

TEST(RunStore, ResumeRejectsShardMismatch) {
  const std::string path = torn_copy("shardmismatch.run.jsonl");
  StoreOptions store;
  store.resume_from = path;
  store.store_path = path;
  store.shard_index = 0;
  store.shard_count = 2;  // file was written unsharded
  EXPECT_THROW(ScenarioRunner(tiny_scenario()).run(tiny_workload(), store),
               std::invalid_argument);
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Sharding and merge

/// Runs shard `index` of `count`, storing to a run file; returns its path.
std::string run_shard(int index, int count, const std::string& tag) {
  StoreOptions store;
  store.shard_index = index;
  store.shard_count = count;
  store.store_path =
      tmp_path("shard_" + tag + "_" + std::to_string(index) + ".run.jsonl");
  std::filesystem::remove(store.store_path);
  ScenarioRunner(tiny_scenario()).run(tiny_workload(), store);
  return store.store_path;
}

TEST(RunStore, ShardsPartitionTheGridDeterministically) {
  StoreOptions store;
  store.shard_index = 1;
  store.shard_count = 2;
  store.store_path = tmp_path("slice.run.jsonl");
  std::filesystem::remove(store.store_path);
  const ScenarioResult slice =
      ScenarioRunner(tiny_scenario()).run(tiny_workload(), store);
  EXPECT_FALSE(slice.complete());
  EXPECT_EQ(slice.total_points, 6u);
  EXPECT_EQ(slice.flat_indices, (std::vector<std::size_t>{1, 3, 5}));
  EXPECT_THROW(slice.at({0, 0}), std::invalid_argument);
  // The slice's summaries equal the corresponding full-run points.
  const Reference& ref = reference_run();
  for (std::size_t i = 0; i < slice.points.size(); ++i) {
    EXPECT_EQ(slice.points[i].metric.mean,
              ref.result.points[slice.flat_indices[i]].metric.mean);
  }
  std::filesystem::remove(store.store_path);
}

TEST(Merge, ShardMergeMatchesSingleRunByteForByte) {
  const Reference& ref = reference_run();
  for (const int count : {2, 3}) {
    std::vector<std::string> paths;
    for (int i = 0; i < count; ++i) {
      paths.push_back(run_shard(i, count, std::to_string(count)));
    }
    const ScenarioResult merged = merge_run_files(paths);
    EXPECT_TRUE(merged.complete());
    EXPECT_EQ(merged.to_table().to_csv(), ref.csv);
    EXPECT_DOUBLE_EQ(merged.clean_accuracy, ref.result.clean_accuracy);
    for (const std::string& path : paths) std::filesystem::remove(path);
  }
}

TEST(Merge, SingleCompleteRunFileMaterializes) {
  const Reference& ref = reference_run();
  const ScenarioResult merged = merge_run_files({ref.path});
  EXPECT_EQ(merged.to_table().to_csv(), ref.csv);
}

TEST(Merge, DetectsOverlapGapAndMismatch) {
  EXPECT_THROW(merge_run_files({}), std::invalid_argument);

  const std::string s0 = run_shard(0, 2, "dup");
  // Overlap: the same shard twice.
  EXPECT_THROW(merge_run_files({s0, s0}), std::invalid_argument);
  // Gap: shard 1 of 2 is missing.
  EXPECT_THROW(merge_run_files({s0}), std::invalid_argument);

  // Fingerprint mismatch: a shard of a different spec.
  ScenarioSpec other = tiny_scenario();
  other.master_seed += 1;
  StoreOptions store;
  store.shard_index = 1;
  store.shard_count = 2;
  store.store_path = tmp_path("othershard.run.jsonl");
  std::filesystem::remove(store.store_path);
  ScenarioRunner(other).run(tiny_workload(), store);
  EXPECT_THROW(merge_run_files({s0, store.store_path}),
               std::invalid_argument);
  std::filesystem::remove(s0);
  std::filesystem::remove(store.store_path);
}

}  // namespace
}  // namespace flim::exp

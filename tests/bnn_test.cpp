// Unit tests for the BNN engine: layers, engines, model, serialization.
#include <gtest/gtest.h>

#include <filesystem>

#include "bnn/activations.hpp"
#include "bnn/batch_norm.hpp"
#include "bnn/binary_conv2d.hpp"
#include "bnn/binary_dense.hpp"
#include "bnn/blocks.hpp"
#include "bnn/conv2d.hpp"
#include "bnn/dense.hpp"
#include "bnn/engine.hpp"
#include "bnn/flim_engine.hpp"
#include "bnn/model.hpp"
#include "bnn/pooling.hpp"
#include "bnn/serialize.hpp"
#include "core/rng.hpp"
#include "fault/fault_generator.hpp"
#include "tensor/ops.hpp"

namespace flim::bnn {
namespace {

using tensor::FloatTensor;
using tensor::Shape;

FloatTensor random_pm1(const Shape& shape, std::uint64_t seed) {
  core::Rng rng(seed);
  FloatTensor t(shape);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = rng.bernoulli(0.5) ? 1.0f : -1.0f;
  }
  return t;
}

FloatTensor random_float(const Shape& shape, std::uint64_t seed) {
  core::Rng rng(seed);
  FloatTensor t(shape);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.normal());
  }
  return t;
}

InferenceContext make_ctx(XnorExecutionEngine& e) {
  InferenceContext ctx;
  ctx.engine = &e;
  return ctx;
}

TEST(BinaryConv2D, MatchesFloatSignConvolution) {
  // Binary conv must equal a float convolution of sign(x) with ±1 weights
  // and -1 padding.
  const std::int64_t in_ch = 3, out_ch = 4, k = 3;
  const FloatTensor weights = random_pm1(Shape{out_ch, in_ch * k * k}, 1);
  BinaryConv2D conv("c", in_ch, out_ch, k, 1, 1, weights);
  const FloatTensor x = random_float(Shape{2, in_ch, 6, 6}, 2);

  ReferenceEngine engine;
  InferenceContext ctx = make_ctx(engine);
  const FloatTensor y = conv.forward(x, ctx);
  ASSERT_EQ(y.shape(), (Shape{2, out_ch, 6, 6}));

  // Naive reference.
  for (std::int64_t b = 0; b < 2; ++b) {
    for (std::int64_t oc = 0; oc < out_ch; ++oc) {
      for (std::int64_t oy = 0; oy < 6; ++oy) {
        for (std::int64_t ox = 0; ox < 6; ++ox) {
          float acc = 0.0f;
          std::int64_t idx = 0;
          for (std::int64_t ic = 0; ic < in_ch; ++ic) {
            for (std::int64_t ky = 0; ky < k; ++ky) {
              for (std::int64_t kx = 0; kx < k; ++kx, ++idx) {
                const std::int64_t iy = oy + ky - 1;
                const std::int64_t ix = ox + kx - 1;
                float v = -1.0f;  // binary padding
                if (iy >= 0 && iy < 6 && ix >= 0 && ix < 6) {
                  v = x.at4(b, ic, iy, ix) >= 0.0f ? 1.0f : -1.0f;
                }
                acc += v * weights.at2(oc, idx);
              }
            }
          }
          EXPECT_FLOAT_EQ(y.at4(b, oc, oy, ox), acc);
        }
      }
    }
  }
}

TEST(BinaryDense, MatchesSignDotProduct) {
  const FloatTensor weights = random_pm1(Shape{3, 10}, 3);
  BinaryDense dense("d", 10, 3, weights);
  const FloatTensor x = random_float(Shape{2, 10}, 4);
  ReferenceEngine engine;
  InferenceContext ctx = make_ctx(engine);
  const FloatTensor y = dense.forward(x, ctx);
  for (std::int64_t b = 0; b < 2; ++b) {
    for (std::int64_t o = 0; o < 3; ++o) {
      float acc = 0.0f;
      for (std::int64_t i = 0; i < 10; ++i) {
        acc += (x.at2(b, i) >= 0.0f ? 1.0f : -1.0f) * weights.at2(o, i);
      }
      EXPECT_FLOAT_EQ(y.at2(b, o), acc);
    }
  }
}

TEST(Conv2D, IdentityKernelPassesThrough) {
  // 1x1 kernel with weight 1 reproduces the input.
  FloatTensor w(Shape{1, 1}, 1.0f);
  Conv2D conv("c", 1, 1, 1, 1, 0, w, FloatTensor(Shape{1}));
  const FloatTensor x = random_float(Shape{1, 1, 4, 4}, 5);
  ReferenceEngine engine;
  InferenceContext ctx = make_ctx(engine);
  const FloatTensor y = conv.forward(x, ctx);
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Dense, AppliesBias) {
  FloatTensor w(Shape{2, 2}, std::vector<float>{1, 0, 0, 1});
  FloatTensor b(Shape{2}, std::vector<float>{10, 20});
  Dense dense("d", 2, 2, w, b);
  FloatTensor x(Shape{1, 2}, std::vector<float>{1, 2});
  ReferenceEngine engine;
  InferenceContext ctx = make_ctx(engine);
  const FloatTensor y = dense.forward(x, ctx);
  EXPECT_FLOAT_EQ(y.at2(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(y.at2(0, 1), 22.0f);
}

TEST(BatchNorm, NormalizesPerChannel) {
  const std::int64_t ch = 2;
  FloatTensor gamma(Shape{ch}, 2.0f);
  FloatTensor beta(Shape{ch}, std::vector<float>{1.0f, -1.0f});
  FloatTensor mean(Shape{ch}, std::vector<float>{5.0f, 0.0f});
  FloatTensor var(Shape{ch}, std::vector<float>{4.0f, 1.0f});
  BatchNorm bn("bn", ch, gamma, beta, mean, var, 0.0f);

  FloatTensor x(Shape{1, ch, 1, 2});
  x.at4(0, 0, 0, 0) = 5.0f;  // (5-5)/2*2+1 = 1
  x.at4(0, 0, 0, 1) = 7.0f;  // (7-5)/2*2+1 = 3
  x.at4(0, 1, 0, 0) = 1.0f;  // (1-0)/1*2-1 = 1
  x.at4(0, 1, 0, 1) = -1.0f;

  ReferenceEngine engine;
  InferenceContext ctx = make_ctx(engine);
  const FloatTensor y = bn.forward(x, ctx);
  EXPECT_NEAR(y.at4(0, 0, 0, 0), 1.0f, 1e-5f);
  EXPECT_NEAR(y.at4(0, 0, 0, 1), 3.0f, 1e-5f);
  EXPECT_NEAR(y.at4(0, 1, 0, 0), 1.0f, 1e-5f);
  EXPECT_NEAR(y.at4(0, 1, 0, 1), -3.0f, 1e-5f);
}

TEST(BatchNorm, Rank2Inputs) {
  FloatTensor ones(Shape{3}, 1.0f);
  FloatTensor zeros(Shape{3});
  BatchNorm bn("bn", 3, ones, zeros, zeros, ones, 0.0f);
  const FloatTensor x = random_float(Shape{2, 3}, 6);
  ReferenceEngine engine;
  InferenceContext ctx = make_ctx(engine);
  const FloatTensor y = bn.forward(x, ctx);
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_NEAR(y[i], x[i], 1e-5f);
}

TEST(MaxPool2D, PicksWindowMaximum) {
  MaxPool2D pool("p", 2, 2);
  FloatTensor x(Shape{1, 1, 4, 4});
  for (std::int64_t i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  ReferenceEngine engine;
  InferenceContext ctx = make_ctx(engine);
  const FloatTensor y = pool.forward(x, ctx);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 0), 5.0f);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 1, 1), 15.0f);
}

TEST(Pooling, GlobalAvgAndAvgPool) {
  GlobalAvgPool gap("g");
  AvgPool2D avg("a", 2, 2);
  FloatTensor x(Shape{1, 2, 2, 2});
  for (std::int64_t i = 0; i < 8; ++i) x[i] = static_cast<float>(i);
  ReferenceEngine engine;
  InferenceContext ctx = make_ctx(engine);
  const FloatTensor g = gap.forward(x, ctx);
  EXPECT_EQ(g.shape(), (Shape{1, 2}));
  EXPECT_FLOAT_EQ(g.at2(0, 0), 1.5f);
  EXPECT_FLOAT_EQ(g.at2(0, 1), 5.5f);
  const FloatTensor a = avg.forward(x, ctx);
  EXPECT_FLOAT_EQ(a.at4(0, 0, 0, 0), 1.5f);
}

TEST(Activations, SignReluScaleFlatten) {
  ReferenceEngine engine;
  InferenceContext ctx = make_ctx(engine);

  Sign sign_layer("s");
  FloatTensor x(Shape{1, 1, 1, 4}, std::vector<float>{-2, -0.0f, 0.5f, 3});
  const FloatTensor s = sign_layer.forward(x, ctx);
  EXPECT_FLOAT_EQ(s[0], -1.0f);
  EXPECT_FLOAT_EQ(s[1], 1.0f);  // sign(-0.0) == sign(0) == +1

  ReLU relu("r");
  const FloatTensor r = relu.forward(x, ctx);
  EXPECT_FLOAT_EQ(r[0], 0.0f);
  EXPECT_FLOAT_EQ(r[3], 3.0f);

  ChannelScale scale("cs", FloatTensor(Shape{1}, 2.0f));
  const FloatTensor sc = scale.forward(x, ctx);
  EXPECT_FLOAT_EQ(sc[3], 6.0f);

  Flatten flat("f");
  const FloatTensor fl = flat.forward(x, ctx);
  EXPECT_EQ(fl.shape(), (Shape{1, 4}));
}

TEST(Blocks, ResidualAddsIdentity) {
  std::vector<LayerPtr> body;
  body.push_back(std::make_unique<ChannelScale>("x2", FloatTensor(Shape{1}, 2.0f)));
  ResidualBlock block("res", std::move(body), nullptr);
  FloatTensor x(Shape{1, 1, 2, 2}, 3.0f);
  ReferenceEngine engine;
  InferenceContext ctx = make_ctx(engine);
  const FloatTensor y = block.forward(x, ctx);
  for (std::int64_t i = 0; i < y.numel(); ++i) EXPECT_FLOAT_EQ(y[i], 9.0f);
}

TEST(Blocks, ConcatGrowsChannels) {
  std::vector<LayerPtr> body;
  body.push_back(std::make_unique<ChannelScale>("x2", FloatTensor(Shape{2}, 2.0f)));
  ConcatBlock block("cat", std::move(body));
  FloatTensor x(Shape{1, 2, 2, 2}, 1.0f);
  ReferenceEngine engine;
  InferenceContext ctx = make_ctx(engine);
  const FloatTensor y = block.forward(x, ctx);
  EXPECT_EQ(y.shape(), (Shape{1, 4, 2, 2}));
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(y.at4(0, 3, 0, 0), 2.0f);
}

// Key verification (paper, Section IV): FLIM without faults must equal the
// vanilla framework exactly.
TEST(FlimEngine, ZeroFaultsEqualsReference) {
  const FloatTensor weights = random_pm1(Shape{6, 30}, 7);
  BinaryDense dense("layer", 30, 6, weights);
  const FloatTensor x = random_float(Shape{4, 30}, 8);

  ReferenceEngine ref;
  FlimEngine flim;  // no fault entries
  InferenceContext c1 = make_ctx(ref);
  InferenceContext c2 = make_ctx(flim);
  EXPECT_EQ(dense.forward(x, c1), dense.forward(x, c2));
}

TEST(FlimEngine, CleanMaskEqualsReference) {
  // Even with an (all-zero) mask configured, results must be identical.
  const FloatTensor weights = random_pm1(Shape{6, 30}, 9);
  BinaryDense dense("layer", 30, 6, weights);
  const FloatTensor x = random_float(Shape{4, 30}, 10);

  fault::FaultVectorEntry entry;
  entry.layer_name = "layer";
  entry.mask = fault::FaultMask(5, 5);
  for (const auto granularity : {fault::FaultGranularity::kOutputElement,
                                 fault::FaultGranularity::kProductTerm}) {
    entry.granularity = granularity;
    FlimEngine flim;
    flim.set_layer_fault(entry);
    ReferenceEngine ref;
    InferenceContext c1 = make_ctx(ref);
    InferenceContext c2 = make_ctx(flim);
    EXPECT_EQ(dense.forward(x, c1), dense.forward(x, c2));
  }
}

TEST(FlimEngine, FullFlipMaskNegatesEverything) {
  const FloatTensor weights = random_pm1(Shape{4, 20}, 11);
  BinaryDense dense("layer", 20, 4, weights);
  const FloatTensor x = random_float(Shape{2, 20}, 12);

  fault::FaultVectorEntry entry;
  entry.layer_name = "layer";
  entry.mask = fault::FaultMask(2, 2);
  for (std::int64_t s = 0; s < 4; ++s) entry.mask.set_flip(s, true);

  ReferenceEngine ref;
  FlimEngine flim;
  flim.set_layer_fault(entry);
  InferenceContext c1 = make_ctx(ref);
  InferenceContext c2 = make_ctx(flim);
  const FloatTensor clean = dense.forward(x, c1);
  const FloatTensor faulty = dense.forward(x, c2);
  for (std::int64_t i = 0; i < clean.numel(); ++i) {
    EXPECT_FLOAT_EQ(faulty[i], -clean[i]);
  }
}

TEST(FlimEngine, FaultsOnlyTouchConfiguredLayer) {
  const FloatTensor weights = random_pm1(Shape{4, 20}, 13);
  BinaryDense faulty_layer("faulty", 20, 4, weights);
  BinaryDense clean_layer("clean", 20, 4, weights);
  const FloatTensor x = random_float(Shape{2, 20}, 14);

  fault::FaultVectorEntry entry;
  entry.layer_name = "faulty";
  entry.mask = fault::FaultMask(2, 2);
  entry.mask.set_flip(0, true);

  FlimEngine flim;
  flim.set_layer_fault(entry);
  ReferenceEngine ref;
  InferenceContext cf = make_ctx(flim);
  InferenceContext cr = make_ctx(ref);
  EXPECT_EQ(clean_layer.forward(x, cf), clean_layer.forward(x, cr));
  EXPECT_NE(faulty_layer.forward(x, cf), faulty_layer.forward(x, cr));
}

TEST(FlimEngine, ResetTimeRestartsDynamicFaults) {
  const FloatTensor weights = random_pm1(Shape{2, 10}, 15);
  BinaryDense dense("layer", 10, 2, weights);
  const FloatTensor x = random_float(Shape{1, 10}, 16);

  fault::FaultVectorEntry entry;
  entry.layer_name = "layer";
  entry.kind = fault::FaultKind::kDynamic;
  entry.dynamic_period = 2;
  entry.mask = fault::FaultMask(1, 2);
  entry.mask.set_flip(0, true);
  entry.mask.set_flip(1, true);

  FlimEngine flim;
  flim.set_layer_fault(entry);
  ReferenceEngine ref;
  InferenceContext cf = make_ctx(flim);
  InferenceContext cr = make_ctx(ref);
  const FloatTensor clean = dense.forward(x, cr);

  // Execution 0: inactive; execution 1: active.
  EXPECT_EQ(dense.forward(x, cf), clean);
  EXPECT_NE(dense.forward(x, cf), clean);
  flim.reset_time();
  EXPECT_EQ(dense.forward(x, cf), clean);
}

TEST(RecordingEngine, CapturesWorkloads) {
  const FloatTensor weights = random_pm1(Shape{4, 27}, 17);
  BinaryConv2D conv("conv", 3, 4, 3, 1, 1, weights);
  const FloatTensor x = random_float(Shape{1, 3, 5, 5}, 18);
  RecordingEngine rec;
  InferenceContext ctx = make_ctx(rec);
  conv.forward(x, ctx);
  ASSERT_EQ(rec.workloads().size(), 1u);
  const LayerWorkload& w = rec.workloads()[0];
  EXPECT_EQ(w.layer_name, "conv");
  EXPECT_EQ(w.positions_per_image, 25);
  EXPECT_EQ(w.out_channels, 4);
  EXPECT_EQ(w.k, 27);
  EXPECT_EQ(w.output_elements_per_image(), 100);
  EXPECT_EQ(w.product_terms_per_image(), 2700);
}

Model make_tiny_model(std::uint64_t seed) {
  Model m("tiny");
  core::Rng rng(seed);
  m.add(std::make_unique<Conv2D>("stem", 1, 2, 3, 1, 1,
                                 random_float(Shape{2, 9}, seed + 1),
                                 FloatTensor(Shape{2})));
  m.add(std::make_unique<BatchNorm>("bn", 2, FloatTensor(Shape{2}, 1.0f),
                                    FloatTensor(Shape{2}),
                                    FloatTensor(Shape{2}),
                                    FloatTensor(Shape{2}, 1.0f)));
  m.add(std::make_unique<Sign>("sign"));
  m.add(std::make_unique<BinaryConv2D>("bconv", 2, 4, 3, 1, 1,
                                       random_pm1(Shape{4, 18}, seed + 2)));
  m.add(std::make_unique<MaxPool2D>("pool", 2, 2));
  m.add(std::make_unique<Flatten>("flat"));
  m.add(std::make_unique<BinaryDense>("head", 4 * 3 * 3,
                                      10, random_pm1(Shape{10, 36}, seed + 3)));
  return m;
}

TEST(Model, ForwardShapeAndAnalyze) {
  Model m = make_tiny_model(21);
  ReferenceEngine engine;
  const FloatTensor x = random_float(Shape{2, 1, 6, 6}, 22);
  const FloatTensor logits = m.forward(x, engine);
  EXPECT_EQ(logits.shape(), (Shape{2, 10}));

  const ModelCharacteristics c = m.analyze(random_float(Shape{1, 1, 6, 6}, 23));
  EXPECT_EQ(c.binarized_layers.size(), 2u);  // bconv + head
  EXPECT_GT(c.binary_params, 0);
  EXPECT_GT(c.real_params, 0);
  EXPECT_GT(c.binarized_percent, 0.0);
  EXPECT_LT(c.binarized_percent, 100.0);
  EXPECT_GT(c.size_megabytes, 0.0);
}

TEST(Model, SerializationRoundTripPreservesLogits) {
  Model m = make_tiny_model(31);
  const std::string path = ::testing::TempDir() + "/flim_model_test.flim";
  save_model(m, path);
  const Model loaded = load_model(path);
  EXPECT_EQ(loaded.name(), "tiny");
  EXPECT_EQ(loaded.num_layers(), m.num_layers());

  ReferenceEngine engine;
  const FloatTensor x = random_float(Shape{3, 1, 6, 6}, 32);
  const FloatTensor a = m.forward(x, engine);
  const FloatTensor b = loaded.forward(x, engine);
  EXPECT_EQ(a, b);
  std::filesystem::remove(path);
}

TEST(Model, SerializationHandlesBlocks) {
  Model m("blocks");
  std::vector<LayerPtr> body;
  body.push_back(std::make_unique<ChannelScale>("s", FloatTensor(Shape{2}, 2.0f)));
  m.add(std::make_unique<ResidualBlock>("res", std::move(body), nullptr));
  std::vector<LayerPtr> cat_body;
  cat_body.push_back(
      std::make_unique<ChannelScale>("s2", FloatTensor(Shape{2}, 0.5f)));
  m.add(std::make_unique<ConcatBlock>("cat", std::move(cat_body)));

  const std::string path = ::testing::TempDir() + "/flim_blocks_test.flim";
  save_model(m, path);
  const Model loaded = load_model(path);

  ReferenceEngine engine;
  const FloatTensor x = random_float(Shape{1, 2, 3, 3}, 33);
  EXPECT_EQ(m.forward(x, engine), loaded.forward(x, engine));
  std::filesystem::remove(path);
}

TEST(Model, EvaluateComputesAccuracy) {
  Model m = make_tiny_model(41);
  ReferenceEngine engine;
  data::Batch batch;
  batch.images = random_float(Shape{4, 1, 6, 6}, 42);
  const FloatTensor logits = m.forward(batch.images, engine);
  batch.labels = tensor::argmax_rows(logits);
  EXPECT_DOUBLE_EQ(m.evaluate(batch, engine), 1.0);
}

}  // namespace
}  // namespace flim::bnn

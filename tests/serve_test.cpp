// Tests for the serving path: eval wire-message round-trips, cache keying
// and the warm-entry pool (hit/miss/LRU counters, spelling-insensitive
// sharing), batching and backpressure semantics, and the end-to-end server
// contract -- headlined by the claim that a served eval_result payload is
// byte-identical to a direct in-process evaluation of the same request,
// and that a client killed mid-request does not take the server down.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "core/minijson.hpp"
#include "core/thread_pool.hpp"
#include "exp/eval_point.hpp"
#include "exp/scenario.hpp"
#include "fleet/protocol.hpp"
#include "fleet/wire.hpp"
#include "serve/batcher.hpp"
#include "serve/plan_cache.hpp"
#include "serve/server.hpp"

namespace flim {
namespace {

/// ctest runs every test in its own concurrent process; all scratch paths
/// are process-unique so the suite is parallel-safe.
std::string process_tag() {
#if defined(__unix__) || defined(__APPLE__)
  static const std::string tag = std::to_string(::getpid());
#else
  static const std::string tag = "solo";
#endif
  return tag;
}

std::string tmp_dir(const std::string& name) {
  return ::testing::TempDir() + "flim_serve_" + process_tag() + "_" + name;
}

/// The tiny lenet workload every serving test shares: one epoch over 32
/// samples trains in well under a second, and the per-process weight cache
/// makes every spec after the first load instantly.
exp::WorkloadSpec tiny_workload() {
  exp::WorkloadSpec w;
  w.model = "lenet";
  w.eval_images = 16;
  w.epochs = 1;
  w.train_samples = 32;
  w.weights_dir = tmp_dir("weights");
  return w;
}

exp::EvalPointSpec tiny_spec(const std::string& fault_expr) {
  exp::EvalPointSpec spec;
  spec.workload = tiny_workload();
  spec.engine.backend = exp::Backend::kFlim;
  spec.fault_expr = fault_expr;
  spec.repetitions = 2;
  spec.master_seed = 7;
  return spec;
}

/// The cold direct path: fresh workload load, fresh plan, fresh workspace.
/// Every warm-path assertion compares against this string byte-for-byte.
std::string direct_payload(const exp::EvalPointSpec& spec) {
  const exp::Workload workload = exp::load_workload(spec.workload);
  const bnn::ForwardPlan plan(workload.model, workload.eval_batch.images.shape());
  std::vector<tensor::Workspace> workspaces(1);
  const core::Summary summary =
      exp::evaluate_eval_point(spec, workload, plan, workspaces);
  return exp::format_eval_payload(spec, summary);
}

// ---------------------------------------------------------------------------
// Protocol: the serving messages round-trip through parse_message

TEST(ServeProtocol, EvalRequestRoundTrips) {
  fleet::EvalRequest req;
  req.model = "lenet";
  req.backend = "tmr";
  req.tmr_replicas = 5;
  req.fault_expr = "stuckat(rate=2e-3,sa1=0.7)+drift(tau=500)";
  req.granularity = "term";
  req.grid = "32x128";
  req.repetitions = 9;
  req.master_seed = 424242;
  req.deadline_ms = 1500;

  const fleet::Message m = fleet::parse_message(fleet::encode_eval_request(req));
  EXPECT_EQ(m.type, "eval_request");
  EXPECT_EQ(core::json_number(m.fields, "protocol"), fleet::kProtocolVersion);

  const fleet::EvalRequest back = fleet::decode_eval_request(m);
  EXPECT_EQ(back.model, req.model);
  EXPECT_EQ(back.backend, req.backend);
  EXPECT_EQ(back.tmr_replicas, req.tmr_replicas);
  EXPECT_EQ(back.fault_expr, req.fault_expr);
  EXPECT_EQ(back.granularity, req.granularity);
  EXPECT_EQ(back.grid, req.grid);
  EXPECT_EQ(back.repetitions, req.repetitions);
  EXPECT_EQ(back.master_seed, req.master_seed);
  EXPECT_EQ(back.deadline_ms, req.deadline_ms);
}

TEST(ServeProtocol, ResultBusyAndStatsRoundTrip) {
  // The payload is an arbitrary JSON line; quotes and backslashes must
  // survive the escape round-trip byte-for-byte.
  const std::string payload = "{\"mean\": 0.5, \"note\": \"a\\\"b\"}";
  fleet::Message m = fleet::parse_message(fleet::encode_eval_result(payload));
  EXPECT_EQ(m.type, "eval_result");
  EXPECT_EQ(fleet::decode_eval_result(m), payload);

  m = fleet::parse_message(fleet::encode_busy(250));
  EXPECT_EQ(m.type, "busy");
  EXPECT_EQ(core::json_number(m.fields, "retry_ms"), 250);

  EXPECT_EQ(fleet::parse_message(fleet::encode_stats_request()).type, "stats");

  fleet::ServeStats stats;
  stats.cache_hits = 1;
  stats.cache_misses = 2;
  stats.cache_evictions = 3;
  stats.cache_entries = 4;
  stats.requests_completed = 5;
  stats.requests_expired = 6;
  stats.requests_rejected = 7;
  stats.batches = 8;
  stats.coalesced = 9;
  m = fleet::parse_message(fleet::encode_stats_ok(stats));
  EXPECT_EQ(m.type, "stats_ok");
  const fleet::ServeStats back = fleet::decode_stats_ok(m);
  EXPECT_EQ(back.cache_hits, 1u);
  EXPECT_EQ(back.cache_misses, 2u);
  EXPECT_EQ(back.cache_evictions, 3u);
  EXPECT_EQ(back.cache_entries, 4u);
  EXPECT_EQ(back.requests_completed, 5u);
  EXPECT_EQ(back.requests_expired, 6u);
  EXPECT_EQ(back.requests_rejected, 7u);
  EXPECT_EQ(back.batches, 8u);
  EXPECT_EQ(back.coalesced, 9u);
}

TEST(ServeProtocol, MalformedLinesAndMissingFieldsThrowJsonError) {
  // Garbage and type-less lines fail at parse_message.
  EXPECT_THROW(fleet::parse_message("not json"), core::JsonError);
  EXPECT_THROW(fleet::parse_message("{\"reps\": 3}"), core::JsonError);

  // A structurally valid message of the wrong shape fails at decode: the
  // session's error reply must come from the decoder, never from reading
  // uninitialized fields.
  const fleet::Message stats =
      fleet::parse_message(fleet::encode_stats_request());
  EXPECT_THROW(fleet::decode_eval_request(stats), core::JsonError);
  EXPECT_THROW(fleet::decode_stats_ok(
                   fleet::parse_message(fleet::encode_busy(100))),
               core::JsonError);
}

// ---------------------------------------------------------------------------
// Cache keying

TEST(EvalPointKey, CleanModelKeyIsStableAndSeparatedFromFaulted) {
  // The clean model (empty expression) is a first-class cache key of its
  // own: deterministic across calls, distinct from any faulted spec, and
  // separated by the model dimension.
  const exp::EvalPointSpec clean = tiny_spec("");
  EXPECT_EQ(exp::eval_point_key(clean), exp::eval_point_key(clean));
  EXPECT_NE(exp::eval_point_key(clean),
            exp::eval_point_key(tiny_spec("stuckat(rate=2e-3)")));

  exp::EvalPointSpec other_model = clean;
  other_model.workload.model = "BinaryDenseNet45";
  EXPECT_NE(exp::eval_point_key(clean), exp::eval_point_key(other_model));
}

TEST(EvalPointKey, CanonicalizesSpellingsAndSeparatesSubstrates) {
  // Two spellings of one stack share a key; repetitions/seed are absent.
  exp::EvalPointSpec a = tiny_spec("stuckat(rate=2e-3)");
  exp::EvalPointSpec b = tiny_spec("stuckat(rate=0.002)");
  b.repetitions = 99;
  b.master_seed = 1;
  EXPECT_EQ(exp::eval_point_key(a), exp::eval_point_key(b));

  // Every cached dimension separates keys.
  exp::EvalPointSpec c = a;
  c.granularity = fault::FaultGranularity::kProductTerm;
  EXPECT_NE(exp::eval_point_key(a), exp::eval_point_key(c));

  exp::EvalPointSpec d = a;
  d.grid = lim::CrossbarGeometry{32, 128};
  EXPECT_NE(exp::eval_point_key(a), exp::eval_point_key(d));

  exp::EvalPointSpec e = a;
  e.engine.backend = exp::Backend::kTmr;
  exp::EvalPointSpec f = e;
  f.engine.tmr_replicas = 5;
  EXPECT_NE(exp::eval_point_key(a), exp::eval_point_key(e));
  EXPECT_NE(exp::eval_point_key(e), exp::eval_point_key(f));
}

TEST(EvalPointSpecValidate, RejectsNonsense) {
  exp::EvalPointSpec bad_model = tiny_spec("");
  bad_model.workload.model = "no-such-model";
  EXPECT_THROW(exp::validate(bad_model), std::invalid_argument);

  exp::EvalPointSpec bad_expr = tiny_spec("definitely-not-a-fault(");
  EXPECT_THROW(exp::validate(bad_expr), std::invalid_argument);

  exp::EvalPointSpec bad_reps = tiny_spec("");
  bad_reps.repetitions = 0;
  EXPECT_THROW(exp::validate(bad_reps), std::invalid_argument);

  EXPECT_NO_THROW(exp::validate(tiny_spec("stuckat(rate=1e-3)")));
}

// ---------------------------------------------------------------------------
// PlanCache: counters, sharing, eviction, warm-vs-cold identity

TEST(PlanCache, MissThenHitReturnsTheSameEntry) {
  serve::PlanCache cache(4, 1);
  const exp::EvalPointSpec spec = tiny_spec("stuckat(rate=2e-3)");

  const auto first = cache.get_or_create(spec);
  const auto second = cache.get_or_create(spec);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.size(), 1u);

  const serve::CacheCounters c = cache.counters();
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.evictions, 0u);
}

TEST(PlanCache, TwoSpellingsOfOneStackShareOneEntry) {
  serve::PlanCache cache(4, 1);
  const auto a = cache.get_or_create(tiny_spec("stuckat(rate=2e-3)"));
  const auto b = cache.get_or_create(tiny_spec("stuckat(rate=0.002)"));
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.counters().hits, 1u);
}

TEST(PlanCache, EntriesShareOneWorkloadAcrossFaultExpressions) {
  serve::PlanCache cache(4, 1);
  const auto a = cache.get_or_create(tiny_spec("stuckat(rate=2e-3)"));
  const auto b = cache.get_or_create(tiny_spec("bitflip(rate=1e-3)"));
  EXPECT_NE(a.get(), b.get());
  // One trained model underneath both entries.
  EXPECT_EQ(&a->workload(), &b->workload());
}

TEST(PlanCache, LruEvictsTheColdestEntry) {
  serve::PlanCache cache(2, 1);
  cache.get_or_create(tiny_spec("stuckat(rate=1e-3)"));
  cache.get_or_create(tiny_spec("bitflip(rate=1e-3)"));
  // Touch the first so the second is now coldest.
  cache.get_or_create(tiny_spec("stuckat(rate=1e-3)"));
  // A third key evicts bitflip, not stuckat.
  cache.get_or_create(tiny_spec("dynamic(rate=1e-3)"));

  serve::CacheCounters c = cache.counters();
  EXPECT_EQ(c.evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);

  // stuckat is still warm; bitflip went cold and must rebuild.
  cache.get_or_create(tiny_spec("stuckat(rate=1e-3)"));
  EXPECT_EQ(cache.counters().hits, c.hits + 1);
  cache.get_or_create(tiny_spec("bitflip(rate=1e-3)"));
  EXPECT_EQ(cache.counters().misses, c.misses + 1);
}

TEST(PlanCache, WarmEvaluationIsByteIdenticalToColdDirect) {
  const exp::EvalPointSpec spec = tiny_spec("stuckat(rate=2e-3)+drift(tau=500)");
  const std::string cold = direct_payload(spec);

  serve::PlanCache cache(4, 1);
  const auto entry = cache.get_or_create(spec);
  // Twice: the workspace arena is dirty on the second pass, which is
  // exactly the state a long-running server evaluates from.
  EXPECT_EQ(entry->evaluate_payload(spec.repetitions, spec.master_seed, nullptr),
            cold);
  EXPECT_EQ(entry->evaluate_payload(spec.repetitions, spec.master_seed, nullptr),
            cold);
}

TEST(PlanCache, WarmEntryAnswersPerRequestProtocols) {
  // One warm entry answers requests differing in repetitions/seed; each
  // answer matches the cold direct run of that exact protocol.
  serve::PlanCache cache(4, 1);
  const auto entry = cache.get_or_create(tiny_spec("stuckat(rate=2e-3)"));

  exp::EvalPointSpec other = tiny_spec("stuckat(rate=2e-3)");
  other.repetitions = 3;
  other.master_seed = 99;
  EXPECT_EQ(entry->evaluate_payload(3, 99, nullptr), direct_payload(other));
  EXPECT_EQ(cache.counters().misses, 1u);
}

// ---------------------------------------------------------------------------
// Batcher: manual-mode (pump) semantics

serve::BatcherOptions manual_options(std::size_t queue = 8,
                                     std::size_t batch_max = 8) {
  serve::BatcherOptions o;
  o.queue_capacity = queue;
  o.batch_max = batch_max;
  o.start_thread = false;
  return o;
}

TEST(Batcher, PumpCompletesAQueuedRequest) {
  const exp::EvalPointSpec spec = tiny_spec("stuckat(rate=2e-3)");
  serve::PlanCache cache(4, 1);
  const auto entry = cache.get_or_create(spec);

  serve::Batcher batcher(manual_options());
  const auto ticket = std::make_shared<serve::Ticket>();
  ASSERT_EQ(batcher.submit(entry, spec.repetitions, spec.master_seed, -1, ticket),
            serve::SubmitStatus::kAccepted);
  EXPECT_TRUE(batcher.pump());
  ticket->wait();
  EXPECT_TRUE(ticket->ok());
  EXPECT_EQ(ticket->payload(), direct_payload(spec));
  // Queue is dry.
  EXPECT_FALSE(batcher.pump());

  const serve::BatcherCounters c = batcher.counters();
  EXPECT_EQ(c.submitted, 1u);
  EXPECT_EQ(c.completed, 1u);
  EXPECT_EQ(c.batches, 1u);
}

TEST(Batcher, CoalescesSameKeyRequestsIntoOneBatch) {
  const exp::EvalPointSpec spec = tiny_spec("stuckat(rate=2e-3)");
  serve::PlanCache cache(4, 1);
  const auto entry = cache.get_or_create(spec);

  serve::Batcher batcher(manual_options());
  std::vector<std::shared_ptr<serve::Ticket>> tickets;
  for (int i = 0; i < 3; ++i) {
    tickets.push_back(std::make_shared<serve::Ticket>());
    ASSERT_EQ(batcher.submit(entry, spec.repetitions, spec.master_seed, -1,
                             tickets.back()),
              serve::SubmitStatus::kAccepted);
  }
  // One pump drains all three: same key, one batch.
  EXPECT_TRUE(batcher.pump());
  EXPECT_FALSE(batcher.pump());

  // Batched answers are bit-identical to the serial direct run.
  const std::string expect = direct_payload(spec);
  for (const auto& t : tickets) {
    t->wait();
    EXPECT_TRUE(t->ok());
    EXPECT_EQ(t->payload(), expect);
  }

  const serve::BatcherCounters c = batcher.counters();
  EXPECT_EQ(c.batches, 1u);
  EXPECT_EQ(c.coalesced, 2u);
  EXPECT_EQ(c.completed, 3u);
}

TEST(Batcher, BatchMaxBoundsCoalescing) {
  const exp::EvalPointSpec spec = tiny_spec("stuckat(rate=2e-3)");
  serve::PlanCache cache(4, 1);
  const auto entry = cache.get_or_create(spec);

  serve::Batcher batcher(manual_options(/*queue=*/8, /*batch_max=*/2));
  std::vector<std::shared_ptr<serve::Ticket>> tickets;
  for (int i = 0; i < 3; ++i) {
    tickets.push_back(std::make_shared<serve::Ticket>());
    ASSERT_EQ(batcher.submit(entry, spec.repetitions, spec.master_seed, -1,
                             tickets.back()),
              serve::SubmitStatus::kAccepted);
  }
  EXPECT_TRUE(batcher.pump());  // first two
  EXPECT_TRUE(batcher.pump());  // the straggler
  EXPECT_FALSE(batcher.pump());
  const serve::BatcherCounters c = batcher.counters();
  EXPECT_EQ(c.batches, 2u);
  EXPECT_EQ(c.coalesced, 1u);
}

TEST(Batcher, ExpiredDeadlineAnswersErrorInsteadOfEvaluating) {
  const exp::EvalPointSpec spec = tiny_spec("stuckat(rate=2e-3)");
  serve::PlanCache cache(4, 1);
  const auto entry = cache.get_or_create(spec);

  serve::Batcher batcher(manual_options());
  const auto ticket = std::make_shared<serve::Ticket>();
  // A zero budget has deterministically elapsed by pump time.
  ASSERT_EQ(batcher.submit(entry, spec.repetitions, spec.master_seed, 0, ticket),
            serve::SubmitStatus::kAccepted);
  EXPECT_TRUE(batcher.pump());
  ticket->wait();
  EXPECT_FALSE(ticket->ok());
  EXPECT_NE(ticket->payload().find("deadline"), std::string::npos);

  const serve::BatcherCounters c = batcher.counters();
  EXPECT_EQ(c.expired, 1u);
  EXPECT_EQ(c.completed, 0u);
}

TEST(Batcher, FullQueueAnswersBusyAndDrainingRejectsSubmits) {
  const exp::EvalPointSpec spec = tiny_spec("stuckat(rate=2e-3)");
  serve::PlanCache cache(4, 1);
  const auto entry = cache.get_or_create(spec);

  serve::Batcher batcher(manual_options(/*queue=*/1));
  const auto first = std::make_shared<serve::Ticket>();
  const auto second = std::make_shared<serve::Ticket>();
  ASSERT_EQ(batcher.submit(entry, spec.repetitions, spec.master_seed, -1, first),
            serve::SubmitStatus::kAccepted);
  EXPECT_EQ(batcher.submit(entry, spec.repetitions, spec.master_seed, -1, second),
            serve::SubmitStatus::kBusy);
  EXPECT_EQ(batcher.counters().rejected_busy, 1u);

  // drain() in manual mode runs the queue dry; the accepted request still
  // completes, later submits are refused.
  batcher.drain();
  first->wait();
  EXPECT_TRUE(first->ok());
  EXPECT_EQ(batcher.submit(entry, spec.repetitions, spec.master_seed, -1, second),
            serve::SubmitStatus::kDraining);
}

// ---------------------------------------------------------------------------
// End-to-end: a live server over loopback

serve::ServerOptions tiny_server_options() {
  serve::ServerOptions o;
  o.eval_images = 16;
  o.epochs = 1;
  o.train_samples = 32;
  o.weights_dir = tmp_dir("weights");
  return o;
}

fleet::EvalRequest tiny_request(const std::string& fault_expr) {
  fleet::EvalRequest req;
  req.model = "lenet";
  req.backend = "flim";
  req.fault_expr = fault_expr;
  req.repetitions = 2;
  req.master_seed = 7;
  return req;
}

/// One request/reply exchange on a fresh connection.
fleet::Message ask(int port, const std::string& line) {
  fleet::LineChannel chan(fleet::connect_to("127.0.0.1", port));
  chan.send_line(line);
  const fleet::RecvResult got = chan.recv_line(60000);
  EXPECT_EQ(got.status, fleet::RecvStatus::kLine);
  return fleet::parse_message(got.line);
}

TEST(EvalServer, ServedResultIsByteIdenticalToDirectEvaluation) {
  serve::EvalServer server(tiny_server_options());
  server.start();

  // The direct reference for the same request, spelled differently: the
  // request says 2e-3, the reference 0.002; canonicalization makes them
  // one point.
  exp::EvalPointSpec spec = tiny_spec("stuckat(rate=0.002)");
  const std::string expect = direct_payload(spec);

  const fleet::Message reply = ask(
      server.port(), fleet::encode_eval_request(tiny_request("stuckat(rate=2e-3)")));
  ASSERT_EQ(reply.type, "eval_result");
  EXPECT_EQ(fleet::decode_eval_result(reply), expect);

  // Same request again: answered from the warm entry, still byte-identical.
  const fleet::Message again = ask(
      server.port(), fleet::encode_eval_request(tiny_request("stuckat(rate=0.002)")));
  ASSERT_EQ(again.type, "eval_result");
  EXPECT_EQ(fleet::decode_eval_result(again), expect);

  const serve::CacheCounters c = server.cache().counters();
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.hits, 1u);
  server.stop();
}

TEST(EvalServer, KilledClientMidRequestDoesNotTakeTheServerDown) {
  serve::EvalServer server(tiny_server_options());
  server.start();

  // A client submits a request and vanishes without reading the reply.
  {
    fleet::LineChannel doomed(fleet::connect_to("127.0.0.1", server.port()));
    doomed.send_line(fleet::encode_eval_request(tiny_request("stuckat(rate=1e-3)")));
    doomed.close();
  }

  // A well-behaved client on a fresh connection is served normally.
  const fleet::Message reply = ask(
      server.port(), fleet::encode_eval_request(tiny_request("bitflip(rate=1e-3)")));
  ASSERT_EQ(reply.type, "eval_result");
  server.stop();
}

TEST(EvalServer, StatsReportsTheServingCounters) {
  serve::EvalServer server(tiny_server_options());
  server.start();

  const std::string req =
      fleet::encode_eval_request(tiny_request("stuckat(rate=1e-3)"));
  ASSERT_EQ(ask(server.port(), req).type, "eval_result");
  ASSERT_EQ(ask(server.port(), req).type, "eval_result");

  const fleet::Message reply = ask(server.port(), fleet::encode_stats_request());
  ASSERT_EQ(reply.type, "stats_ok");
  const fleet::ServeStats stats = fleet::decode_stats_ok(reply);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_entries, 1u);
  EXPECT_EQ(stats.requests_completed, 2u);
  EXPECT_EQ(stats.requests_rejected, 0u);
  EXPECT_GE(stats.batches, 1u);
  server.stop();
}

TEST(EvalServer, BadRequestAnswersErrorAndKeepsTheConnection) {
  serve::EvalServer server(tiny_server_options());
  server.start();

  fleet::LineChannel chan(fleet::connect_to("127.0.0.1", server.port()));

  // A config error (unknown model) is answered with error...
  fleet::EvalRequest bad = tiny_request("");
  bad.model = "no-such-model";
  chan.send_line(fleet::encode_eval_request(bad));
  fleet::RecvResult got = chan.recv_line(60000);
  ASSERT_EQ(got.status, fleet::RecvStatus::kLine);
  EXPECT_EQ(fleet::parse_message(got.line).type, "error");

  // ...and the connection stays usable for a valid request.
  chan.send_line(fleet::encode_eval_request(tiny_request("")));
  got = chan.recv_line(60000);
  ASSERT_EQ(got.status, fleet::RecvStatus::kLine);
  EXPECT_EQ(fleet::parse_message(got.line).type, "eval_result");

  // A protocol violation (not JSON) is answered with error and the
  // connection dropped.
  chan.send_line("not json at all");
  got = chan.recv_line(60000);
  ASSERT_EQ(got.status, fleet::RecvStatus::kLine);
  EXPECT_EQ(fleet::parse_message(got.line).type, "error");
  got = chan.recv_line(60000);
  EXPECT_EQ(got.status, fleet::RecvStatus::kEof);
  server.stop();
}

TEST(EvalServer, ExpiredDeadlineAnswersErrorOverTheWire) {
  serve::EvalServer server(tiny_server_options());
  server.start();

  fleet::EvalRequest req = tiny_request("stuckat(rate=1e-3)");
  req.deadline_ms = 0;  // deterministically elapsed by batch time
  const fleet::Message reply =
      ask(server.port(), fleet::encode_eval_request(req));
  EXPECT_EQ(reply.type, "error");
  server.stop();
}

TEST(EvalServer, StopIsIdempotentAndDrainsCleanly) {
  serve::EvalServer server(tiny_server_options());
  server.start();
  ASSERT_EQ(ask(server.port(),
                fleet::encode_eval_request(tiny_request(""))).type,
            "eval_result");
  server.stop();
  server.stop();  // second stop is a no-op
  // Destruction after stop() must also be clean (covered by scope exit).
}

TEST(EvalServer, ParallelRepetitionPoolIsByteIdenticalToSerial) {
  serve::ServerOptions options = tiny_server_options();
  options.jobs = 2;
  serve::EvalServer server(options);
  server.start();

  exp::EvalPointSpec spec = tiny_spec("stuckat(rate=2e-3)");
  spec.repetitions = 4;
  const std::string expect = direct_payload(spec);  // serial, one workspace

  fleet::EvalRequest req = tiny_request("stuckat(rate=2e-3)");
  req.repetitions = 4;
  const fleet::Message reply =
      ask(server.port(), fleet::encode_eval_request(req));
  ASSERT_EQ(reply.type, "eval_result");
  EXPECT_EQ(fleet::decode_eval_result(reply), expect);
  server.stop();
}

}  // namespace
}  // namespace flim

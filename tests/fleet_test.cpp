// Tests for the distributed campaign fleet: wire framing over loopback
// sockets, protocol message round-trips, lease-table semantics, and the
// end-to-end coordinator/worker contract -- including the headline claim
// that a fleet run with a worker killed mid-shard still merges to a CSV
// byte-identical to the single-process run of the same spec.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "core/backoff.hpp"
#include "core/minijson.hpp"
#include "core/rng.hpp"
#include "exp/scenario.hpp"
#include "exp/store.hpp"
#include "fleet/coordinator.hpp"
#include "fleet/lease.hpp"
#include "fleet/protocol.hpp"
#include "fleet/wire.hpp"
#include "fleet/worker.hpp"

namespace flim {
namespace {

/// ctest runs every test in its own concurrent process, so all scratch
/// paths (work dirs, weight cache) are process-unique to keep the suite
/// parallel-safe.
std::string process_tag() {
#if defined(__unix__) || defined(__APPLE__)
  static const std::string tag = std::to_string(::getpid());
#else
  static const std::string tag = "solo";
#endif
  return tag;
}

std::string tmp_dir(const std::string& name) {
  return ::testing::TempDir() + "flim_fleet_" + process_tag() + "_" + name;
}

// ---------------------------------------------------------------------------
// Wire: RAII sockets and line framing over loopback

TEST(Wire, LineChannelRoundTripsLinesOverLoopback) {
  const fleet::Socket listener = fleet::listen_on("127.0.0.1", 0);
  const int port = fleet::local_port(listener);
  ASSERT_GT(port, 0);

  fleet::LineChannel client(fleet::connect_to("127.0.0.1", port));
  auto accepted = fleet::accept_with_timeout(listener, 2000);
  ASSERT_TRUE(accepted.has_value());
  fleet::LineChannel server(std::move(*accepted));

  client.send_line("ping 1");
  client.send_line("ping 2");
  fleet::RecvResult got = server.recv_line(2000);
  ASSERT_EQ(got.status, fleet::RecvStatus::kLine);
  EXPECT_EQ(got.line, "ping 1");
  got = server.recv_line(2000);
  ASSERT_EQ(got.status, fleet::RecvStatus::kLine);
  EXPECT_EQ(got.line, "ping 2");

  server.send_line("pong");
  got = client.recv_line(2000);
  ASSERT_EQ(got.status, fleet::RecvStatus::kLine);
  EXPECT_EQ(got.line, "pong");

  // No pending data: a short timeout reports kTimeout, not an error.
  got = server.recv_line(10);
  EXPECT_EQ(got.status, fleet::RecvStatus::kTimeout);

  // Embedded newlines would tear the framing; send_line refuses them.
  EXPECT_THROW(client.send_line("two\nlines"), std::invalid_argument);

  // A clean peer close surfaces as kEof.
  client.close();
  got = server.recv_line(2000);
  EXPECT_EQ(got.status, fleet::RecvStatus::kEof);
}

TEST(Wire, AcceptTimesOutWithoutAPendingConnection) {
  const fleet::Socket listener = fleet::listen_on("127.0.0.1", 0);
  const auto accepted = fleet::accept_with_timeout(listener, 20);
  EXPECT_FALSE(accepted.has_value());
}

TEST(Wire, ConnectWithRetryGivesUpAfterMaxAttempts) {
  // Bind an ephemeral port, then close it so nothing listens there.
  int dead_port = 0;
  {
    const fleet::Socket listener = fleet::listen_on("127.0.0.1", 0);
    dead_port = fleet::local_port(listener);
  }
  core::BackoffPolicy policy;
  policy.initial_delay_ms = 1;
  policy.max_delay_ms = 2;
  core::Rng rng(99);
  EXPECT_THROW(
      fleet::connect_with_retry("127.0.0.1", dead_port, policy, 3, rng),
      std::runtime_error);
}

// ---------------------------------------------------------------------------
// Protocol: every message round-trips through parse_message

TEST(Protocol, WorkerMessagesRoundTrip) {
  fleet::Message m = fleet::parse_message(fleet::encode_hello("w0", "deadbeef"));
  EXPECT_EQ(m.type, "hello");
  EXPECT_EQ(core::json_number(m.fields, "protocol"), fleet::kProtocolVersion);
  EXPECT_EQ(core::json_string(m.fields, "worker"), "w0");
  EXPECT_EQ(core::json_string(m.fields, "fingerprint"), "deadbeef");

  m = fleet::parse_message(fleet::encode_lease_request("w0"));
  EXPECT_EQ(m.type, "lease_request");
  EXPECT_EQ(core::json_string(m.fields, "worker"), "w0");

  m = fleet::parse_message(fleet::encode_heartbeat(3, 17, 5, 9));
  EXPECT_EQ(m.type, "heartbeat");
  EXPECT_EQ(core::json_number(m.fields, "shard_index"), 3);
  EXPECT_EQ(core::json_number(m.fields, "token"), 17);
  EXPECT_EQ(core::json_number(m.fields, "completed"), 5);
  EXPECT_EQ(core::json_number(m.fields, "owned"), 9);

  // Upload bytes travel as one JSON string; newlines and quotes must
  // survive the escape round-trip byte-for-byte.
  const std::string bytes = "{\"a\": 1}\n{\"b\": \"x\\ny\"}\ntail";
  m = fleet::parse_message(fleet::encode_upload(1, 23, bytes));
  EXPECT_EQ(m.type, "upload");
  EXPECT_EQ(core::json_number(m.fields, "shard_index"), 1);
  EXPECT_EQ(core::json_number(m.fields, "token"), 23);
  EXPECT_EQ(core::json_string(m.fields, "bytes"), bytes);
}

TEST(Protocol, CoordinatorMessagesRoundTrip) {
  fleet::Message m = fleet::parse_message(fleet::encode_hello_ok(4));
  EXPECT_EQ(m.type, "hello_ok");
  EXPECT_EQ(core::json_number(m.fields, "protocol"), fleet::kProtocolVersion);
  EXPECT_EQ(core::json_number(m.fields, "shard_count"), 4);

  m = fleet::parse_message(fleet::encode_lease_grant(2, 4, 7, 500));
  EXPECT_EQ(m.type, "lease_grant");
  EXPECT_EQ(core::json_number(m.fields, "shard_index"), 2);
  EXPECT_EQ(core::json_number(m.fields, "shard_count"), 4);
  EXPECT_EQ(core::json_number(m.fields, "token"), 7);
  EXPECT_EQ(core::json_number(m.fields, "heartbeat_ms"), 500);

  m = fleet::parse_message(fleet::encode_wait(250));
  EXPECT_EQ(m.type, "wait");
  EXPECT_EQ(core::json_number(m.fields, "retry_ms"), 250);

  EXPECT_EQ(fleet::parse_message(fleet::encode_done()).type, "done");
  EXPECT_EQ(fleet::parse_message(fleet::encode_heartbeat_ok()).type,
            "heartbeat_ok");
  EXPECT_EQ(fleet::parse_message(fleet::encode_upload_ok()).type, "upload_ok");
  EXPECT_EQ(fleet::parse_message(fleet::encode_lease_lost()).type,
            "lease_lost");

  m = fleet::parse_message(fleet::encode_error("bad \"quote\""));
  EXPECT_EQ(m.type, "error");
  EXPECT_EQ(core::json_string(m.fields, "what"), "bad \"quote\"");
}

TEST(Protocol, RejectsMalformedLinesWithJsonError) {
  EXPECT_THROW(fleet::parse_message("not json"), core::JsonError);
  EXPECT_THROW(fleet::parse_message("{\"no_type\": 1}"), core::JsonError);
  EXPECT_THROW(fleet::parse_message("{\"type\": 7}"), core::JsonError);
}

// ---------------------------------------------------------------------------
// LeaseTable: single-threaded semantics (races live in concurrency_test)

TEST(LeaseTable, GrantsExpiresAndFencesInOrder) {
  fleet::LeaseTable table(2, 100);
  const auto a = table.acquire("a", 0);
  const auto b = table.acquire("b", 0);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->shard_index, 0);
  EXPECT_EQ(b->shard_index, 1);
  EXPECT_NE(a->token, b->token);
  // Both held and fresh: nothing to grant.
  EXPECT_FALSE(table.acquire("c", 50).has_value());

  // `a` goes silent past the TTL; `b` heartbeats in time.
  EXPECT_TRUE(table.heartbeat(1, b->token, 1, 2, 90));
  const auto c = table.acquire("c", 120);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->shard_index, 0);
  EXPECT_EQ(table.expired_releases(), 1u);

  // The original holder is fenced off; the new holder completes.
  EXPECT_FALSE(table.heartbeat(0, a->token, 1, 2, 121));
  EXPECT_FALSE(table.complete(0, a->token));
  EXPECT_TRUE(table.complete(0, c->token));
  EXPECT_FALSE(table.all_done());
  EXPECT_EQ(table.done_count(), 1);
  EXPECT_TRUE(table.complete(1, b->token));
  EXPECT_TRUE(table.all_done());
  // Done shards are never re-granted, no matter how late the clock.
  EXPECT_FALSE(table.acquire("d", 1000000).has_value());
}

// ---------------------------------------------------------------------------
// End-to-end: coordinator + two workers, one killed mid-shard

using exp::ScenarioSpec;

ScenarioSpec fleet_scenario() {
  ScenarioSpec s;
  s.name = "fleet-test";
  s.workload.model = "lenet";
  s.workload.eval_images = 16;
  s.workload.epochs = 1;
  s.workload.train_samples = 32;
  s.workload.weights_dir = tmp_dir("weights");
  s.axes = {exp::rate_axis({0.0, 0.15, 0.3}),
            exp::layers_axis({"conv1", "combined"})};
  s.repetitions = 2;
  s.master_seed = 11;
  return s;
}

const exp::Workload& fleet_workload() {
  static const exp::Workload* w =
      new exp::Workload(exp::load_workload(fleet_scenario().workload));
  return *w;
}

TEST(Fleet, WorkerWithWrongFingerprintIsRejected) {
  fleet::CoordinatorOptions copts;
  copts.shard_count = 2;
  copts.work_dir = tmp_dir("reject_work");
  fleet::Coordinator coordinator(fleet_scenario(), copts);
  coordinator.start();

  // A different master seed is a different campaign; the hello must be
  // refused before the worker can contribute a single point.
  ScenarioSpec other = fleet_scenario();
  other.master_seed = 12;
  fleet::WorkerOptions wopts;
  wopts.port = coordinator.port();
  wopts.work_dir = copts.work_dir;
  wopts.fsync_each_point = false;
  EXPECT_THROW(fleet::run_worker(other, fleet_workload(), wopts),
               std::runtime_error);
  coordinator.stop();
}

TEST(Fleet, KilledWorkerIsReLeasedAndMergedCsvMatchesSingleProcess) {
  const ScenarioSpec spec = fleet_scenario();
  const exp::Workload& workload = fleet_workload();

  // The reference: one uninterrupted single-process run.
  const std::string reference_csv =
      exp::ScenarioRunner(spec).run(workload).to_table().to_csv();

  const std::string work_dir = tmp_dir("e2e_work");
  std::filesystem::remove_all(work_dir);

  fleet::CoordinatorOptions copts;
  copts.shard_count = 2;
  copts.lease_ttl_ms = 1500;
  copts.heartbeat_ms = 100;
  copts.wait_retry_ms = 25;
  copts.work_dir = work_dir;
  fleet::Coordinator coordinator(spec, copts);
  coordinator.start();

  // Worker "victim" dies after one evaluated point: no upload, no further
  // heartbeats, a partial run file left in the shared work dir. Worker
  // "survivor" completes its own shard, waits out the victim's lease TTL,
  // re-leases the abandoned shard, resumes the partial file, and finishes
  // the campaign.
  fleet::WorkerOptions victim_opts;
  victim_opts.name = "victim";
  victim_opts.port = coordinator.port();
  victim_opts.work_dir = work_dir;
  victim_opts.fsync_each_point = false;
  victim_opts.max_points = 1;

  fleet::WorkerOptions survivor_opts;
  survivor_opts.name = "survivor";
  survivor_opts.port = coordinator.port();
  survivor_opts.work_dir = work_dir;
  survivor_opts.fsync_each_point = false;

  // The victim runs (and dies) first so the abandoned shard deterministically
  // exists by the time the survivor starts; the survivor then races the
  // victim's lease TTL for it.
  const fleet::WorkerReport victim =
      fleet::run_worker(spec, workload, victim_opts);
  const fleet::WorkerReport survivor =
      fleet::run_worker(spec, workload, survivor_opts);

  const exp::ScenarioResult merged = coordinator.wait();
  coordinator.stop();

  EXPECT_TRUE(victim.aborted);
  EXPECT_EQ(victim.points_evaluated, 1u);
  EXPECT_FALSE(victim.saw_done);
  EXPECT_TRUE(survivor.saw_done);
  EXPECT_FALSE(survivor.aborted);
  EXPECT_EQ(survivor.shards_completed, 2);
  // The victim's durable point was resumed, not re-evaluated: the survivor
  // freshly evaluated exactly the remaining five of six grid points.
  EXPECT_EQ(survivor.points_evaluated, 5u);
  EXPECT_GE(coordinator.leases().expired_releases(), 1u);

  ASSERT_TRUE(merged.complete());
  EXPECT_EQ(merged.points.size(), 6u);
  // The tentpole claim: fleet CSV is byte-identical to the single run.
  EXPECT_EQ(merged.to_table().to_csv(), reference_csv);

  std::filesystem::remove_all(work_dir);
}

TEST(Fleet, SecondWaveOfWorkersDrainsACampaignCleanly) {
  // No crash anywhere: two concurrent workers split the shards, the merge
  // covers the grid, and a late third worker is told done immediately.
  const ScenarioSpec spec = fleet_scenario();
  const exp::Workload& workload = fleet_workload();

  const std::string work_dir = tmp_dir("clean_work");
  std::filesystem::remove_all(work_dir);

  fleet::CoordinatorOptions copts;
  copts.shard_count = 2;
  copts.work_dir = work_dir;
  copts.wait_retry_ms = 25;
  fleet::Coordinator coordinator(spec, copts);
  coordinator.start();

  fleet::WorkerOptions wopts;
  wopts.port = coordinator.port();
  wopts.work_dir = work_dir;
  wopts.fsync_each_point = false;

  fleet::WorkerReport a, b;
  std::thread ta([&] {
    fleet::WorkerOptions o = wopts;
    o.name = "a";
    a = fleet::run_worker(spec, workload, o);
  });
  std::thread tb([&] {
    fleet::WorkerOptions o = wopts;
    o.name = "b";
    b = fleet::run_worker(spec, workload, o);
  });
  ta.join();
  tb.join();

  EXPECT_TRUE(a.saw_done);
  EXPECT_TRUE(b.saw_done);
  EXPECT_EQ(a.shards_completed + b.shards_completed, 2);
  EXPECT_EQ(a.points_evaluated + b.points_evaluated, 6u);

  // A worker arriving after completion gets done on its first request.
  fleet::WorkerOptions late = wopts;
  late.name = "late";
  const fleet::WorkerReport c = fleet::run_worker(spec, workload, late);
  EXPECT_TRUE(c.saw_done);
  EXPECT_EQ(c.leases_granted, 0);

  const exp::ScenarioResult merged = coordinator.wait();
  coordinator.stop();
  EXPECT_TRUE(merged.complete());
  std::filesystem::remove_all(work_dir);
}

}  // namespace
}  // namespace flim

// Unit tests for flim::core (RNG, statistics, tables, thread pool, campaign).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <set>

#include "core/backoff.hpp"
#include "core/campaign.hpp"
#include "core/check.hpp"
#include "core/clock.hpp"
#include "core/minijson.hpp"
#include "core/report.hpp"
#include "core/rng.hpp"
#include "core/stats.hpp"
#include "core/sysinfo.hpp"
#include "core/thread_pool.hpp"

namespace flim::core {
namespace {

TEST(Rng, IsDeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DiffersAcrossSeeds) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformIsRoughlyUniform) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform_double();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, BernoulliHandlesDegenerateProbabilities) {
  Rng rng(13);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-1.0));
}

TEST(Rng, NormalHasExpectedMoments) {
  Rng rng(17);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Rng, DerivedStreamsAreIndependentAndDeterministic) {
  Rng base(5);
  Rng c1 = base.derive(1);
  Rng c2 = base.derive(2);
  Rng c1b = Rng(5).derive(1);
  EXPECT_EQ(c1(), c1b());
  EXPECT_NE(c1(), c2());
}

TEST(Rng, SampleWithoutReplacementIsExactAndDistinct) {
  Rng rng(23);
  const auto sample = rng.sample_without_replacement(100, 40);
  EXPECT_EQ(sample.size(), 40u);
  std::set<std::uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 40u);
  for (const auto v : sample) EXPECT_LT(v, 100u);
}

TEST(Rng, SampleWithoutReplacementFullPopulation) {
  Rng rng(29);
  const auto sample = rng.sample_without_replacement(10, 10);
  std::set<std::uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleWithoutReplacementRejectsOversample) {
  Rng rng(31);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), std::invalid_argument);
}

TEST(Rng, PoissonZeroMeanIsAlwaysZero) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, PoissonRejectsNegativeMean) {
  Rng rng(41);
  EXPECT_THROW(rng.poisson(-1.0), std::invalid_argument);
}

TEST(Rng, PoissonSmallMeanMatchesMomentsLoosely) {
  // Poisson(mean) has mean == variance == `mean`; check both within a few
  // standard errors over many draws (Knuth branch, mean < 32).
  Rng rng(43);
  const double mean = 3.5;
  const int n = 20000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double k = static_cast<double>(rng.poisson(mean));
    sum += k;
    sum_sq += k * k;
  }
  const double sample_mean = sum / n;
  const double sample_var = sum_sq / n - sample_mean * sample_mean;
  EXPECT_NEAR(sample_mean, mean, 0.1);
  EXPECT_NEAR(sample_var, mean, 0.3);
}

TEST(Rng, PoissonLargeMeanUsesNormalApproximation) {
  Rng rng(47);
  const double mean = 400.0;
  const int n = 4000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(mean));
  EXPECT_NEAR(sum / n, mean, 2.0);
}

TEST(RunningStats, ComputesMeanAndVariance) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, a, b;
  Rng rng(37);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.normal();
    all.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.count(), all.count());
}

TEST(Stats, MedianAndQuantiles) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(quantile({1.0, 2.0, 3.0, 4.0, 5.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile({1.0, 2.0, 3.0, 4.0, 5.0}, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile({1.0, 2.0, 3.0, 4.0, 5.0}, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Table, RendersAsciiAndCsv) {
  Table t({"name", "value"});
  t.add("alpha", 1.5);
  t.add("beta, with comma", 2);
  EXPECT_EQ(t.num_rows(), 2u);
  const std::string ascii = t.to_ascii();
  EXPECT_NE(ascii.find("alpha"), std::string::npos);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"beta, with comma\""), std::string::npos);
}

TEST(Table, RejectsBadRowWidth) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, WritesCsvFile) {
  Table t({"x"});
  t.add(3.25);
  const std::string path = ::testing::TempDir() + "/flim_table_test.csv";
  t.write_csv(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header, row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_EQ(header, "x");
  EXPECT_EQ(row.substr(0, 4), "3.25");
}

TEST(ThreadPool, RunsAllIterations) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.parallel_for(1000, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(Campaign, RepeatsWithDerivedSeeds) {
  CampaignConfig cfg;
  cfg.repetitions = 50;
  cfg.master_seed = 99;
  std::set<std::uint64_t> seeds;
  const Summary s = run_repeated(cfg, [&](std::uint64_t seed) {
    seeds.insert(seed);
    return 1.0;
  });
  EXPECT_EQ(s.count, 50u);
  EXPECT_EQ(seeds.size(), 50u);  // all distinct
  EXPECT_DOUBLE_EQ(s.mean, 1.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Campaign, IsReproducible) {
  CampaignConfig cfg;
  cfg.repetitions = 20;
  cfg.master_seed = 1234;
  auto metric = [](std::uint64_t seed) {
    return Rng(seed).uniform_double();
  };
  const Summary a = run_repeated(cfg, metric);
  const Summary b = run_repeated(cfg, metric);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.stddev, b.stddev);
}

TEST(Campaign, ParallelMatchesSerialMean) {
  CampaignConfig serial;
  serial.repetitions = 40;
  serial.master_seed = 5;
  auto metric = [](std::uint64_t seed) { return Rng(seed).uniform_double(); };
  const Summary s = run_repeated(serial, metric);

  ThreadPool pool(4);
  CampaignConfig parallel = serial;
  parallel.pool = &pool;
  const Summary p = run_repeated(parallel, metric);
  EXPECT_NEAR(s.mean, p.mean, 1e-12);
}

TEST(Campaign, SweepProducesOnePointPerX) {
  CampaignConfig cfg;
  cfg.repetitions = 5;
  const auto points =
      run_sweep(cfg, {0.0, 0.5, 1.0},
                [](double x, std::uint64_t) { return x * 2.0; });
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[1].metric.mean, 1.0);
  EXPECT_DOUBLE_EQ(points[2].x, 1.0);
}

TEST(Campaign, ParallelIsBitIdenticalToSerial) {
  // Values are folded in repetition-index order, so pooled aggregation is
  // exactly the serial result, not merely close.
  CampaignConfig serial;
  serial.repetitions = 64;
  serial.master_seed = 77;
  auto metric = [](std::uint64_t seed) { return Rng(seed).uniform_double(); };
  const Summary s = run_repeated(serial, metric);

  ThreadPool pool(4);
  CampaignConfig parallel = serial;
  parallel.pool = &pool;
  const Summary p = run_repeated(parallel, metric);
  EXPECT_EQ(s.mean, p.mean);
  EXPECT_EQ(s.stddev, p.stddev);
  EXPECT_EQ(s.min, p.min);
  EXPECT_EQ(s.max, p.max);
}

TEST(Campaign, NullLabelFnFallsBackToNumericLabel) {
  CampaignConfig cfg;
  cfg.repetitions = 2;
  const auto points = run_sweep(cfg, std::vector<double>{0.25},
                                [](double x, std::uint64_t) { return x; });
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].label, "0.25");
}

TEST(Campaign, LabeledSweepKeepsGivenLabels) {
  CampaignConfig cfg;
  cfg.repetitions = 3;
  const std::vector<SweepPoint> pts{{0.0, "clean"}, {0.3, "heavy"}};
  const auto points =
      run_sweep(cfg, pts, [](double x, std::uint64_t) { return x + 1.0; });
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].label, "clean");
  EXPECT_EQ(points[1].label, "heavy");
  EXPECT_DOUBLE_EQ(points[1].metric.mean, 1.3);
  EXPECT_DOUBLE_EQ(points[1].x, 0.3);
}

TEST(Campaign, GridSweepIsRowMajorWithLastAxisFastest) {
  CampaignConfig cfg;
  cfg.repetitions = 2;
  const std::vector<SweepAxis> axes{
      {"a", {{1.0, "a1"}, {2.0, "a2"}}},
      {"b", {{10.0, "b10"}, {20.0, "b20"}, {30.0, "b30"}}}};
  std::vector<std::string> order;
  const auto cells = run_grid_sweep(
      cfg, axes,
      [](const std::vector<double>& xs, std::uint64_t) {
        return xs[0] + xs[1];
      },
      [&](const GridPoint& p) { order.push_back(p.labels[0] + p.labels[1]); });
  ASSERT_EQ(cells.size(), 6u);
  const std::vector<std::string> expected{"a1b10", "a1b20", "a1b30",
                                          "a2b10", "a2b20", "a2b30"};
  EXPECT_EQ(order, expected);
  EXPECT_DOUBLE_EQ(cells[0].metric.mean, 11.0);
  EXPECT_DOUBLE_EQ(cells[5].metric.mean, 32.0);
  EXPECT_EQ(cells[4].labels, (std::vector<std::string>{"a2", "b20"}));
  EXPECT_EQ(cells[4].coords, (std::vector<double>{2.0, 20.0}));
}

TEST(Campaign, GridSweepSeedsMatchRunRepeatedPerCell) {
  // Every cell must see the exact seed sequence run_repeated derives, so a
  // grid point reproduces the equivalent standalone campaign bit-for-bit.
  CampaignConfig cfg;
  cfg.repetitions = 4;
  cfg.master_seed = 99;
  auto metric_of = [](double x, std::uint64_t seed) {
    return x + Rng(seed).uniform_double();
  };
  const Summary standalone = run_repeated(
      cfg, [&](std::uint64_t seed) { return metric_of(5.0, seed); });
  const auto cells = run_grid_sweep(
      cfg, {{"x", {{1.0, "1"}, {5.0, "5"}}}},
      [&](const std::vector<double>& xs, std::uint64_t seed) {
        return metric_of(xs[0], seed);
      });
  EXPECT_EQ(cells[1].metric.mean, standalone.mean);
  EXPECT_EQ(cells[1].metric.stddev, standalone.stddev);
}

TEST(Campaign, ForEachGridIndexHandlesDegenerateShapes) {
  int calls = 0;
  for_each_grid_index({}, [&](const std::vector<std::size_t>& idx) {
    EXPECT_TRUE(idx.empty());
    ++calls;
  });
  EXPECT_EQ(calls, 1);  // zero axes = one (empty) cell
  for_each_grid_index({3, 0}, [&](const std::vector<std::size_t>&) {
    FAIL() << "a zero-sized axis must produce no cells";
  });
}

TEST(Campaign, GridSweepRejectsDegenerateAxes) {
  CampaignConfig cfg;
  cfg.repetitions = 1;
  auto metric = [](const std::vector<double>&, std::uint64_t) { return 0.0; };
  EXPECT_THROW(run_grid_sweep(cfg, {}, metric), std::invalid_argument);
  EXPECT_THROW(run_grid_sweep(cfg, {{"empty", {}}}, metric),
               std::invalid_argument);
}

TEST(Table, RendersJson) {
  Table t({"name", "value"});
  t.add("plain", 1);
  t.add("needs \"escaping\"\n", 2);
  const std::string json = t.to_json();
  EXPECT_NE(json.find("\"name\": \"plain\""), std::string::npos);
  EXPECT_NE(json.find("\\\"escaping\\\"\\n"), std::string::npos);
  EXPECT_EQ(json.front(), '[');
}

TEST(Campaign, RejectsZeroRepetitions) {
  CampaignConfig cfg;
  cfg.repetitions = 0;
  EXPECT_THROW(run_repeated(cfg, [](std::uint64_t) { return 0.0; }),
               std::invalid_argument);
}

TEST(SysInfo, CollectsBasicFields) {
  const SystemInfo info = collect_system_info();
  EXPECT_GT(info.logical_cores, 0);
  EXPECT_FALSE(info.compiler.empty());
  EXPECT_FALSE(info.library_version.empty());
  const std::string report = format_system_info(info);
  EXPECT_NE(report.find("CPU"), std::string::npos);
  EXPECT_NE(report.find("FLIM"), std::string::npos);
}

TEST(Campaign, SelectedGridSweepMatchesFullSweepPerCell) {
  // The resume/shard foundation: evaluating any subset of cells produces
  // bit-identical summaries to the full sweep, tagged with row-major flat
  // indices.
  CampaignConfig cfg;
  cfg.repetitions = 3;
  cfg.master_seed = 7;
  const std::vector<SweepAxis> axes{
      {"a", {{1.0, "a1"}, {2.0, "a2"}}},
      {"b", {{10.0, "b10"}, {20.0, "b20"}, {30.0, "b30"}}}};
  auto metric = [](const std::vector<double>& xs, std::uint64_t seed,
                   std::size_t) {
    return xs[0] + xs[1] + Rng(seed).uniform_double();
  };
  const auto full = run_grid_sweep(cfg, axes, metric);
  const auto odd = run_grid_sweep_selected(
      cfg, axes, [](std::size_t flat) { return flat % 2 == 1; }, metric);
  ASSERT_EQ(odd.size(), 3u);
  for (const SelectedGridPoint& sp : odd) {
    EXPECT_EQ(sp.flat_index % 2, 1u);
    EXPECT_EQ(sp.point.metric.mean, full[sp.flat_index].metric.mean);
    EXPECT_EQ(sp.point.metric.stddev, full[sp.flat_index].metric.stddev);
    EXPECT_EQ(sp.point.labels, full[sp.flat_index].labels);
    EXPECT_EQ(sp.point.coords, full[sp.flat_index].coords);
  }
  // A null selector evaluates everything; zero axes evaluate one cell.
  EXPECT_EQ(run_grid_sweep_selected(cfg, axes, nullptr, metric).size(), 6u);
  const auto single = run_grid_sweep_selected(
      cfg, {}, nullptr,
      [](const std::vector<double>& xs, std::uint64_t, std::size_t) {
        return static_cast<double>(xs.size());
      });
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0].flat_index, 0u);
  EXPECT_DOUBLE_EQ(single[0].point.metric.mean, 0.0);
}

TEST(Sysinfo, Fnv1a64IsStableAndSensitive) {
  // Reference vectors from the FNV specification; persisted fingerprints
  // rely on these exact values on every platform.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_NE(fnv1a64("campaign-a"), fnv1a64("campaign-b"));
  EXPECT_EQ(hash_hex(0xcbf29ce484222325ull), "cbf29ce484222325");
  EXPECT_EQ(hash_hex(0x1ull), "0000000000000001");
  EXPECT_NE(code_fingerprint().find("flim-"), std::string::npos);
}

TEST(Report, RoundTripDoubleIsExact) {
  const std::vector<double> values{0.0, 1.0 / 3.0, 0.1, 6.02e23, 5e-324,
                                   -0.036084391824351615};
  for (const double v : values) {
    const std::string text = format_double_roundtrip(v);
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), v) << text;
  }
}

TEST(Backoff, GrowsExponentiallyAndSaturates) {
  BackoffPolicy policy;
  policy.initial_delay_ms = 100;
  policy.max_delay_ms = 1000;
  policy.multiplier = 2.0;
  policy.jitter_fraction = 0.0;
  Rng rng(1);
  EXPECT_EQ(backoff_delay_ms(policy, 0, rng), 100);
  EXPECT_EQ(backoff_delay_ms(policy, 1, rng), 200);
  EXPECT_EQ(backoff_delay_ms(policy, 2, rng), 400);
  EXPECT_EQ(backoff_delay_ms(policy, 3, rng), 800);
  EXPECT_EQ(backoff_delay_ms(policy, 4, rng), 1000);
  // Huge attempt counts must clamp to the ceiling, not overflow.
  EXPECT_EQ(backoff_delay_ms(policy, 500, rng), 1000);
}

TEST(Backoff, JitterStaysInBandAndIsSeedDeterministic) {
  BackoffPolicy policy;
  policy.initial_delay_ms = 1000;
  policy.max_delay_ms = 1000;
  policy.jitter_fraction = 0.2;
  Rng a(42), b(42);
  for (int attempt = 0; attempt < 50; ++attempt) {
    const std::int64_t delay = backoff_delay_ms(policy, attempt, a);
    EXPECT_GE(delay, 800);
    EXPECT_LE(delay, 1200);
    EXPECT_EQ(delay, backoff_delay_ms(policy, attempt, b));
  }
}

TEST(Backoff, ValidatesPolicyAndNeverSleepsZero) {
  BackoffPolicy bad;
  bad.initial_delay_ms = 0;
  Rng rng(1);
  EXPECT_THROW(backoff_delay_ms(bad, 0, rng), std::invalid_argument);
  bad.initial_delay_ms = 10;
  bad.max_delay_ms = 5;
  EXPECT_THROW(backoff_delay_ms(bad, 0, rng), std::invalid_argument);
  bad.max_delay_ms = 10;
  bad.jitter_fraction = 1.0;
  EXPECT_THROW(backoff_delay_ms(bad, 0, rng), std::invalid_argument);
  // A tiny delay with maximal downward jitter still sleeps at least 1 ms.
  BackoffPolicy tiny;
  tiny.initial_delay_ms = 1;
  tiny.max_delay_ms = 1;
  tiny.jitter_fraction = 0.99;
  for (int i = 0; i < 100; ++i) {
    EXPECT_GE(backoff_delay_ms(tiny, 0, rng), 1);
  }
}

TEST(Clock, SteadyClockAdvancesMonotonically) {
  const std::int64_t before = steady_now_ms();
  sleep_ms(2);
  const std::int64_t after = steady_now_ms();
  EXPECT_GE(after - before, 1);
  sleep_ms(0);   // no-op
  sleep_ms(-5);  // no-op
}

TEST(MiniJson, ParsesNumbersStringsAndArrays) {
  const auto obj = parse_json_object_line(
      R"({"n": 1.5, "s": "a\nb", "a": [1, "two"], "e": []})");
  EXPECT_DOUBLE_EQ(json_number(obj, "n"), 1.5);
  EXPECT_EQ(json_string(obj, "s"), "a\nb");
  ASSERT_EQ(json_array(obj, "a").size(), 2u);
  EXPECT_DOUBLE_EQ(json_array(obj, "a")[0].number, 1.0);
  EXPECT_EQ(json_array(obj, "a")[1].text, "two");
  EXPECT_TRUE(json_array(obj, "e").empty());
}

TEST(MiniJson, RejectsMalformedInputWithJsonError) {
  EXPECT_THROW(parse_json_object_line("{\"k\": }"), JsonError);
  EXPECT_THROW(parse_json_object_line("{\"k\": 1} trailing"), JsonError);
  EXPECT_THROW(parse_json_object_line("{\"unterminated"), JsonError);
  const auto obj = parse_json_object_line("{\"k\": 1}");
  EXPECT_THROW(json_string(obj, "k"), JsonError);
  EXPECT_THROW(json_number(obj, "missing"), JsonError);
}

TEST(Check, RequireThrowsWithMessage) {
  try {
    FLIM_REQUIRE(1 == 2, "math broke");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("math broke"), std::string::npos);
  }
}

}  // namespace
}  // namespace flim::core

// TSan negative control: a deliberately seeded data race.
//
// The concurrency suite passing under ThreadSanitizer only means something
// if the TSan build can actually see races. This fixture races two plain
// (unsynchronized, non-atomic) increments through the real ThreadPool and
// is registered in ctest with WILL_FAIL when -DFLIM_SANITIZE=thread: TSan
// must report the race and exit non-zero, so a TSan toolchain that silently
// stopped instrumenting turns the control test red. It is built only in
// TSan builds and is never part of tier-1.
#include <atomic>
#include <cstdio>
#include <future>
#include <vector>

#include "core/thread_pool.hpp"

int main() {
  constexpr int kTasks = 4;
  flim::core::ThreadPool pool(kTasks);
  // Intentional race: every task mutates `counter` without synchronization.
  // Do NOT "fix" this -- the point is to be caught. The arrival barrier is
  // what makes the control reliable: without it a fast worker can drain the
  // whole queue alone and the racy access pattern never actually
  // interleaves, which TSan (correctly) does not report. Spinning until all
  // tasks hold a worker guarantees the unsynchronized increments overlap.
  int counter = 0;
  std::atomic<int> arrived{0};
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.submit([&counter, &arrived] {
      arrived.fetch_add(1, std::memory_order_relaxed);
      while (arrived.load(std::memory_order_relaxed) < kTasks) {
      }
      for (int n = 0; n < 100000; ++n) ++counter;
    }));
  }
  for (auto& f : futures) f.get();
  std::printf("counter=%d (racy; a TSan report is the expected outcome)\n",
              counter);
  return 0;
}

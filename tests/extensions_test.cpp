// Tests for the extension features: training-time fault injection (the
// paper's future work) and the median-vote mitigation engine.
#include <gtest/gtest.h>

#include "bnn/binary_dense.hpp"
#include "bnn/engine.hpp"
#include "bnn/flim_engine.hpp"
#include "bnn/redundancy.hpp"
#include "core/rng.hpp"
#include "data/synthetic_mnist.hpp"
#include "fault/fault_generator.hpp"
#include "models/zoo.hpp"
#include "train/fault_training.hpp"
#include "train/trainer.hpp"

namespace flim {
namespace {

using tensor::FloatTensor;
using tensor::Shape;

fault::FaultVectorEntry entry_with(fault::FaultKind kind, std::int64_t rows,
                                   std::int64_t cols) {
  fault::FaultVectorEntry e;
  e.layer_name = "layer";
  e.kind = kind;
  e.mask = fault::FaultMask(rows, cols);
  return e;
}

TEST(TrainFaultInjection, FlipNegatesForwardAndGradient) {
  fault::FaultVectorEntry e = entry_with(fault::FaultKind::kBitFlip, 1, 4);
  e.mask.set_flip(1, true);
  train::TFaultInjection inj("fi", e, /*full_scale=*/10);

  FloatTensor x(Shape{1, 4}, std::vector<float>{1, 2, 3, 4});
  const FloatTensor y = inj.forward(x, /*training=*/true);
  EXPECT_FLOAT_EQ(y[0], 1.0f);
  EXPECT_FLOAT_EQ(y[1], -2.0f);
  EXPECT_FLOAT_EQ(y[2], 3.0f);

  FloatTensor dy(Shape{1, 4}, 1.0f);
  const FloatTensor dx = inj.backward(dy);
  EXPECT_FLOAT_EQ(dx[0], 1.0f);
  EXPECT_FLOAT_EQ(dx[1], -1.0f);  // gradient negated through the flip
}

TEST(TrainFaultInjection, StuckAtPinsAndBlocksGradient) {
  fault::FaultVectorEntry e = entry_with(fault::FaultKind::kStuckAt, 1, 3);
  e.mask.set_sa0(0, true);
  e.mask.set_sa1(2, true);
  train::TFaultInjection inj("fi", e, /*full_scale=*/7);

  FloatTensor x(Shape{1, 3}, std::vector<float>{5, 5, 5});
  const FloatTensor y = inj.forward(x, true);
  EXPECT_FLOAT_EQ(y[0], -7.0f);
  EXPECT_FLOAT_EQ(y[1], 5.0f);
  EXPECT_FLOAT_EQ(y[2], 7.0f);

  FloatTensor dy(Shape{1, 3}, 2.0f);
  const FloatTensor dx = inj.backward(dy);
  EXPECT_FLOAT_EQ(dx[0], 0.0f);  // pinned elements block the gradient
  EXPECT_FLOAT_EQ(dx[1], 2.0f);
  EXPECT_FLOAT_EQ(dx[2], 0.0f);
}

TEST(TrainFaultInjection, EvalModeIsClean) {
  fault::FaultVectorEntry e = entry_with(fault::FaultKind::kBitFlip, 1, 2);
  e.mask.set_flip(0, true);
  e.mask.set_flip(1, true);
  train::TFaultInjection inj("fi", e, 5);
  FloatTensor x(Shape{2, 2}, 3.0f);
  const FloatTensor y = inj.forward(x, /*training=*/false);
  EXPECT_EQ(y, x);
  // And backward passes straight through.
  EXPECT_EQ(inj.backward(x), x);
}

TEST(TrainFaultInjection, ConvInputUsesSameOpOrderAsInference) {
  // NCHW input: op order is position-major over (pos, channel), matching
  // FaultInjector::apply_output_element.
  fault::FaultVectorEntry e = entry_with(fault::FaultKind::kBitFlip, 1, 3);
  e.mask.set_flip(1, true);  // ops 1, 4, 7, ... flip
  train::TFaultInjection inj("fi", e, 9);

  FloatTensor x(Shape{1, 2, 1, 2}, 1.0f);  // 2 channels, 2 positions
  const FloatTensor y = inj.forward(x, true);
  // ops: (pos0,ch0)=op0 slot0, (pos0,ch1)=op1 slot1 FLIP, (pos1,ch0)=op2,
  // (pos1,ch1)=op3 slot0. NCHW index of (ch1,pos0) = [1*2+0] offset...
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 0), 1.0f);   // op0
  EXPECT_FLOAT_EQ(y.at4(0, 1, 0, 0), -1.0f);  // op1 flipped
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 1), 1.0f);   // op2
  EXPECT_FLOAT_EQ(y.at4(0, 1, 0, 1), 1.0f);   // op3
}

TEST(TrainFaultInjection, DynamicPeriodSchedulesAcrossBatches) {
  fault::FaultVectorEntry e = entry_with(fault::FaultKind::kDynamic, 1, 1);
  e.dynamic_period = 2;
  e.mask.set_flip(0, true);
  train::TFaultInjection inj("fi", e, 3);
  FloatTensor x(Shape{1, 1}, 4.0f);
  EXPECT_FLOAT_EQ(inj.forward(x, true)[0], 4.0f);   // execution 0: inactive
  EXPECT_FLOAT_EQ(inj.forward(x, true)[0], -4.0f);  // execution 1: active
  EXPECT_FLOAT_EQ(inj.forward(x, true)[0], 4.0f);
}

TEST(TrainFaultInjection, ConvertsToIdentity) {
  fault::FaultVectorEntry e = entry_with(fault::FaultKind::kBitFlip, 1, 1);
  e.mask.set_flip(0, true);
  train::TFaultInjection inj("fi", e, 3);
  const bnn::LayerPtr converted = inj.to_inference();
  EXPECT_EQ(converted->type(), "identity");
}

TEST(TrainFaultInjection, RejectsBadConfig) {
  fault::FaultVectorEntry empty;
  empty.layer_name = "x";
  EXPECT_THROW(train::TFaultInjection("fi", empty, 1), std::invalid_argument);
  fault::FaultVectorEntry ok = entry_with(fault::FaultKind::kBitFlip, 1, 1);
  EXPECT_THROW(train::TFaultInjection("fi", ok, 0), std::invalid_argument);
  EXPECT_THROW(train::TFaultInjection("fi", ok, 1, 1.5), std::invalid_argument);
}

TEST(FaultAwareLenet, BuildsTrainsAndConverts) {
  fault::FaultGenerator gen({32, 32});
  core::Rng rng(5);
  fault::FaultVectorFile vectors;
  for (const auto& layer : models::lenet_faultable_layers()) {
    fault::FaultSpec spec;
    spec.kind = fault::FaultKind::kBitFlip;
    spec.injection_rate = 0.1;
    fault::FaultVectorEntry e;
    e.layer_name = layer;
    e.mask = gen.generate(spec, rng);
    vectors.add(std::move(e));
  }

  data::SyntheticMnistOptions opts;
  opts.size = 256;
  data::SyntheticMnist ds(opts);
  train::Graph g = models::build_lenet_binary_fault_aware(3, vectors);
  train::Adam adam(2e-3f);
  train::TrainConfig cfg;
  cfg.epochs = 1;
  cfg.batch_size = 32;
  cfg.train_samples = 128;
  const auto result = train::fit(g, adam, ds, cfg);
  EXPECT_GT(result.final_train_accuracy, 0.05);

  // Conversion drops the injection sites; the inference model runs clean.
  bnn::Model model = g.to_inference_model();
  bnn::ReferenceEngine engine;
  const data::Batch batch = data::load_batch(ds, 0, 8);
  const FloatTensor logits = model.forward(batch.images, engine);
  EXPECT_EQ(logits.shape(), (Shape{8, 10}));
  // Eval-mode graph output must match the converted model exactly.
  const FloatTensor graph_logits = g.forward(batch.images, false);
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    EXPECT_NEAR(graph_logits[i], logits[i], 1e-3f);
  }
}

FloatTensor random_pm1(const Shape& shape, std::uint64_t seed) {
  core::Rng rng(seed);
  FloatTensor t(shape);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = rng.bernoulli(0.5) ? 1.0f : -1.0f;
  }
  return t;
}

TEST(MedianVoteEngine, RequiresOddReplicaCount) {
  std::vector<std::unique_ptr<bnn::XnorExecutionEngine>> two;
  two.push_back(std::make_unique<bnn::ReferenceEngine>());
  two.push_back(std::make_unique<bnn::ReferenceEngine>());
  EXPECT_THROW(bnn::MedianVoteEngine{std::move(two)}, std::invalid_argument);
}

TEST(MedianVoteEngine, CleanReplicasMatchReference) {
  std::vector<std::unique_ptr<bnn::XnorExecutionEngine>> replicas;
  for (int i = 0; i < 3; ++i) {
    replicas.push_back(std::make_unique<bnn::ReferenceEngine>());
  }
  bnn::MedianVoteEngine vote(std::move(replicas));

  const FloatTensor w = random_pm1(Shape{4, 30}, 1);
  bnn::BinaryDense dense("layer", 30, 4, w);
  const FloatTensor x = random_pm1(Shape{3, 30}, 2);

  bnn::ReferenceEngine ref;
  bnn::InferenceContext cr;
  cr.engine = &ref;
  bnn::InferenceContext cv;
  cv.engine = &vote;
  EXPECT_EQ(dense.forward(x, cr), dense.forward(x, cv));
}

TEST(MedianVoteEngine, OutvotesSingleFaultyReplica) {
  // Replica 1 has a full flip mask; replicas 0 and 2 are clean. The median
  // must equal the clean result everywhere.
  fault::FaultVectorEntry e;
  e.layer_name = "layer";
  e.mask = fault::FaultMask(2, 2);
  for (std::int64_t s = 0; s < 4; ++s) e.mask.set_flip(s, true);

  std::vector<std::unique_ptr<bnn::XnorExecutionEngine>> replicas;
  replicas.push_back(std::make_unique<bnn::ReferenceEngine>());
  auto faulty = std::make_unique<bnn::FlimEngine>();
  faulty->set_layer_fault(e);
  replicas.push_back(std::move(faulty));
  replicas.push_back(std::make_unique<bnn::ReferenceEngine>());
  bnn::MedianVoteEngine vote(std::move(replicas));

  const FloatTensor w = random_pm1(Shape{4, 20}, 3);
  bnn::BinaryDense dense("layer", 20, 4, w);
  const FloatTensor x = random_pm1(Shape{2, 20}, 4);

  bnn::ReferenceEngine ref;
  bnn::InferenceContext cr;
  cr.engine = &ref;
  bnn::InferenceContext cv;
  cv.engine = &vote;
  EXPECT_EQ(dense.forward(x, cr), dense.forward(x, cv));
}

TEST(MedianVoteEngine, MajorityFaultyLosesTheVote) {
  fault::FaultVectorEntry e;
  e.layer_name = "layer";
  e.mask = fault::FaultMask(1, 1);
  e.mask.set_flip(0, true);

  std::vector<std::unique_ptr<bnn::XnorExecutionEngine>> replicas;
  for (int i = 0; i < 3; ++i) {
    auto faulty = std::make_unique<bnn::FlimEngine>();
    faulty->set_layer_fault(e);
    replicas.push_back(std::move(faulty));
  }
  bnn::MedianVoteEngine vote(std::move(replicas));

  const FloatTensor w = random_pm1(Shape{1, 10}, 5);
  bnn::BinaryDense dense("layer", 10, 1, w);
  const FloatTensor x = random_pm1(Shape{1, 10}, 6);

  bnn::ReferenceEngine ref;
  bnn::InferenceContext cr;
  cr.engine = &ref;
  bnn::InferenceContext cv;
  cv.engine = &vote;
  const FloatTensor clean = dense.forward(x, cr);
  const FloatTensor voted = dense.forward(x, cv);
  EXPECT_FLOAT_EQ(voted[0], -clean[0]);  // all replicas agree on the fault
}

}  // namespace
}  // namespace flim

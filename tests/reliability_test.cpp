// Tests for the reliability substrate: March tests and their fault
// coverage, the SEC-DED codec and mask-level scrub model, the online canary
// monitor, and the lifetime simulator with mitigation stacks.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "core/rng.hpp"
#include "data/synthetic_mnist.hpp"
#include "lim/crossbar.hpp"
#include "lim/memristor.hpp"
#include "reliability/criticality.hpp"
#include "reliability/ecc.hpp"
#include "reliability/lifetime.hpp"
#include "reliability/march.hpp"
#include "reliability/monitor.hpp"
#include "train/layers.hpp"
#include "train/optimizer.hpp"
#include "train/trainer.hpp"

namespace flim::reliability {
namespace {

lim::CrossbarConfig small_array() {
  lim::CrossbarConfig cfg;
  cfg.rows = 4;
  cfg.cols = 8;
  return cfg;
}

// ---- March algorithm definitions -------------------------------------------

TEST(March, ComplexityMatchesLiterature) {
  EXPECT_EQ(mats_plus().ops_per_cell(), 5);
  EXPECT_EQ(march_x().ops_per_cell(), 6);
  EXPECT_EQ(march_cminus().ops_per_cell(), 10);
  EXPECT_EQ(march_raw1().ops_per_cell(), 12);
}

TEST(March, NotationRendersStandardForm) {
  EXPECT_EQ(mats_plus().notation(), "{ #(w0); U(r0,w1); D(r1,w0) }");
  EXPECT_EQ(march_x().notation(), "{ #(w0); U(r0,w1); D(r1,w0); #(r0) }");
}

TEST(March, StandardTestsAreInComplexityOrder) {
  const auto& tests = standard_march_tests();
  ASSERT_EQ(tests.size(), 4u);
  for (std::size_t i = 1; i < tests.size(); ++i) {
    EXPECT_LE(tests[i - 1].ops_per_cell(), tests[i].ops_per_cell());
  }
}

TEST(March, CleanArrayPassesEveryStandardTest) {
  for (const MarchTest& test : standard_march_tests()) {
    lim::CrossbarArray array(small_array());
    const MarchResult result = run_march(test, array);
    EXPECT_FALSE(result.detected()) << test.name;
    EXPECT_EQ(result.ops_executed,
              static_cast<std::uint64_t>(test.ops_per_cell()) *
                  static_cast<std::uint64_t>(array.rows() * array.cols()))
        << test.name;
  }
}

TEST(March, EmptyTestIsRejected) {
  lim::CrossbarArray array(small_array());
  EXPECT_THROW(run_march(MarchTest{}, array), std::invalid_argument);
  MarchTest empty_element;
  empty_element.elements.push_back({});
  EXPECT_THROW(run_march(empty_element, array), std::invalid_argument);
}

// ---- per-fault-kind detection ----------------------------------------------

bool detects(const MarchTest& test, lim::DeviceFaultKind kind,
             double severity) {
  lim::CrossbarArray array(small_array());
  array.inject_device_fault(2, 3, kind, severity);
  return run_march(test, array).detected();
}

TEST(March, AllStandardTestsDetectHardStuckAts) {
  for (const MarchTest& test : standard_march_tests()) {
    EXPECT_TRUE(detects(test, lim::DeviceFaultKind::kStuckAt0, 1.0))
        << test.name;
    EXPECT_TRUE(detects(test, lim::DeviceFaultKind::kStuckAt1, 1.0))
        << test.name;
  }
}

TEST(March, StuckCurrentDetectedByMatsPlus) {
  // A fresh cell is at HRS; w1 cannot switch it, the following r1 fails.
  EXPECT_TRUE(detects(mats_plus(), lim::DeviceFaultKind::kStuckCurrent, 1.0));
}

TEST(March, SlowSetDetectedByAllStandardTests) {
  // 0->1 transition fault: w1 is ineffective, the next r1 read fails.
  for (const MarchTest& test : standard_march_tests()) {
    EXPECT_TRUE(detects(test, lim::DeviceFaultKind::kSlowSet, 1.0))
        << test.name;
  }
}

TEST(March, SlowResetEscapesMatsPlusButNotMarchX) {
  // The textbook difference between MATS+ and March X: MATS+ never reads
  // after its final w0, so a 1->0 transition fault sensitized by that write
  // goes unnoticed; March X appends the #(r0) element that catches it.
  EXPECT_FALSE(detects(mats_plus(), lim::DeviceFaultKind::kSlowReset, 1.0));
  EXPECT_TRUE(detects(march_x(), lim::DeviceFaultKind::kSlowReset, 1.0));
  EXPECT_TRUE(detects(march_cminus(), lim::DeviceFaultKind::kSlowReset, 1.0));
}

TEST(March, HardReadDisturbDetectedByEveryTest) {
  // severity 1.0: the very first r0 SETs the cell and misreads.
  for (const MarchTest& test : standard_march_tests()) {
    EXPECT_TRUE(detects(test, lim::DeviceFaultKind::kReadDisturb, 1.0))
        << test.name;
  }
}

TEST(March, WeakReadDisturbOnlyCaughtByRepeatedReadTest) {
  // severity 0.3 needs ~3 consecutive reads to flip. Classical algorithms
  // read each cell once per element with intervening writes that restore
  // the state, so the accumulated disturbance never crosses the threshold
  // within one observation; March RAW1's in-place read quadruples do.
  EXPECT_FALSE(detects(mats_plus(), lim::DeviceFaultKind::kReadDisturb, 0.3));
  EXPECT_FALSE(detects(march_x(), lim::DeviceFaultKind::kReadDisturb, 0.3));
  EXPECT_FALSE(
      detects(march_cminus(), lim::DeviceFaultKind::kReadDisturb, 0.3));
  EXPECT_TRUE(detects(march_raw1(), lim::DeviceFaultKind::kReadDisturb, 0.3));
}

TEST(March, IncorrectReadDetectedByEveryTest) {
  for (const MarchTest& test : standard_march_tests()) {
    EXPECT_TRUE(detects(test, lim::DeviceFaultKind::kIncorrectRead, 1.0))
        << test.name;
  }
}

TEST(March, ParametricDriftEscapesAllMarchTests) {
  // A mildly degraded switching rate still completes within the programming
  // pulse, so functional March tests pass -- the monitoring gap that
  // motivates the lifetime/monitor modules.
  for (const MarchTest& test : standard_march_tests()) {
    EXPECT_FALSE(detects(test, lim::DeviceFaultKind::kDrift, 0.5))
        << test.name;
  }
}

TEST(March, FailureLogPinpointsTheFaultyCell) {
  lim::CrossbarArray array(small_array());
  array.inject_device_fault(1, 5, lim::DeviceFaultKind::kStuckAt0, 1.0);
  const MarchResult result = run_march(march_x(), array);
  ASSERT_TRUE(result.detected());
  const MarchFailure& first = result.failures.front();
  EXPECT_EQ(first.row, 1);
  EXPECT_EQ(first.col, 5);
  EXPECT_TRUE(first.expected);   // r1 observed the stuck-at-0
  EXPECT_FALSE(first.got);
}

TEST(March, FailureLogIsBounded) {
  // Every cell stuck-at-0 floods the log; detection must still be cheap.
  lim::CrossbarConfig cfg;
  cfg.rows = 32;
  cfg.cols = 64;
  lim::CrossbarArray array(cfg);
  for (std::int64_t r = 0; r < cfg.rows; ++r) {
    for (std::int64_t c = 0; c < cfg.cols; ++c) {
      array.inject_device_fault(r, c, lim::DeviceFaultKind::kStuckAt0, 1.0);
    }
  }
  const MarchResult result = run_march(march_cminus(), array);
  EXPECT_TRUE(result.detected());
  EXPECT_LE(result.failures.size(), kMaxRecordedFailures);
}

// ---- coverage evaluation ----------------------------------------------------

CoverageConfig coverage_config(double severity) {
  CoverageConfig cfg;
  cfg.crossbar = small_array();
  cfg.samples_per_kind = 8;
  cfg.severity = severity;
  cfg.seed = 7;
  return cfg;
}

double coverage_of(const std::vector<CoverageRow>& rows,
                   lim::DeviceFaultKind kind) {
  for (const CoverageRow& row : rows) {
    if (row.kind == kind) return row.coverage();
  }
  ADD_FAILURE() << "kind missing from coverage rows";
  return -1.0;
}

TEST(MarchCoverage, MarchCminusCoversAllHardFaults) {
  const auto rows = evaluate_coverage(march_cminus(), coverage_config(1.0));
  EXPECT_EQ(rows.size(), lim::all_device_fault_kinds().size());
  for (const CoverageRow& row : rows) {
    EXPECT_EQ(row.injected, 8);
    EXPECT_DOUBLE_EQ(row.coverage(), 1.0) << lim::to_string(row.kind);
  }
}

TEST(MarchCoverage, MatsPlusMissesSlowResetEntirely) {
  const auto rows = evaluate_coverage(mats_plus(), coverage_config(1.0));
  EXPECT_DOUBLE_EQ(coverage_of(rows, lim::DeviceFaultKind::kSlowReset), 0.0);
  EXPECT_DOUBLE_EQ(coverage_of(rows, lim::DeviceFaultKind::kStuckAt0), 1.0);
}

TEST(MarchCoverage, OnlyRaw1CoversWeakReadDisturb) {
  const auto weak = coverage_config(0.3);
  EXPECT_DOUBLE_EQ(coverage_of(evaluate_coverage(march_cminus(), weak),
                               lim::DeviceFaultKind::kReadDisturb),
                   0.0);
  EXPECT_DOUBLE_EQ(coverage_of(evaluate_coverage(march_raw1(), weak),
                               lim::DeviceFaultKind::kReadDisturb),
                   1.0);
}

TEST(MarchCoverage, RejectsZeroSamples) {
  CoverageConfig cfg = coverage_config(1.0);
  cfg.samples_per_kind = 0;
  EXPECT_THROW(evaluate_coverage(mats_plus(), cfg), std::invalid_argument);
}

// ---- SEC-DED codec -----------------------------------------------------------

TEST(SecDed, CleanWordsRoundTrip) {
  const SecDedCodec codec;
  core::Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t data = rng();
    const auto word = codec.encode(data);
    const auto decoded = codec.decode(word);
    EXPECT_EQ(decoded.status, SecDedCodec::Status::kClean);
    EXPECT_EQ(decoded.data, data);
  }
}

TEST(SecDed, EverysingleDataBitErrorIsCorrected) {
  const SecDedCodec codec;
  const std::uint64_t data = 0xdeadbeefcafef00dull;
  const auto clean = codec.encode(data);
  for (int bit = 0; bit < SecDedCodec::kDataBits; ++bit) {
    auto corrupted = clean;
    corrupted.data ^= 1ull << bit;
    const auto decoded = codec.decode(corrupted);
    EXPECT_EQ(decoded.status, SecDedCodec::Status::kCorrectedSingle) << bit;
    EXPECT_EQ(decoded.data, data) << bit;
  }
}

TEST(SecDed, EverySingleParityBitErrorLeavesDataIntact) {
  const SecDedCodec codec;
  const std::uint64_t data = 0x0123456789abcdefull;
  const auto clean = codec.encode(data);
  for (int bit = 0; bit < SecDedCodec::kParityBits; ++bit) {
    auto corrupted = clean;
    corrupted.parity ^= static_cast<std::uint8_t>(1 << bit);
    const auto decoded = codec.decode(corrupted);
    EXPECT_EQ(decoded.status, SecDedCodec::Status::kCorrectedSingle) << bit;
    EXPECT_EQ(decoded.data, data) << bit;
  }
}

TEST(SecDed, DoubleBitErrorsAreDetectedNotMiscorrected) {
  const SecDedCodec codec;
  core::Rng rng(13);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t data = rng();
    auto corrupted = codec.encode(data);
    const int a = static_cast<int>(rng.uniform(SecDedCodec::kCodeBits));
    int b = a;
    while (b == a) b = static_cast<int>(rng.uniform(SecDedCodec::kCodeBits));
    for (const int bit : {a, b}) {
      if (bit < SecDedCodec::kDataBits) {
        corrupted.data ^= 1ull << bit;
      } else {
        corrupted.parity ^= static_cast<std::uint8_t>(
            1 << (bit - SecDedCodec::kDataBits));
      }
    }
    const auto decoded = codec.decode(corrupted);
    EXPECT_EQ(decoded.status, SecDedCodec::Status::kDetectedDouble)
        << "bits " << a << "," << b;
  }
}

TEST(SecDed, TripleBitErrorsNeverCrashAndOftenDetect) {
  // SEC-DED guarantees nothing beyond two errors; the decoder must still
  // return a verdict (never crash, never report kClean) for triples.
  const SecDedCodec codec;
  core::Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t data = rng();
    auto corrupted = codec.encode(data);
    std::set<int> bits;
    while (bits.size() < 3u) {
      bits.insert(static_cast<int>(rng.uniform(SecDedCodec::kCodeBits)));
    }
    for (const int bit : bits) {
      if (bit < SecDedCodec::kDataBits) {
        corrupted.data ^= 1ull << bit;
      } else {
        corrupted.parity ^= static_cast<std::uint8_t>(
            1 << (bit - SecDedCodec::kDataBits));
      }
    }
    const auto decoded = codec.decode(corrupted);
    EXPECT_NE(decoded.status, SecDedCodec::Status::kClean);
  }
}

// ---- ECC scrub over fault masks ----------------------------------------------

TEST(EccScrub, SingleFaultPerWordIsCleared) {
  fault::FaultMask mask(1, 128);  // two 64-cell words
  mask.set_sa0(3, true);
  mask.set_sa1(100, true);
  EccScrubStats stats;
  const fault::FaultMask residual = apply_secded_scrub(mask, {}, &stats);
  EXPECT_FALSE(residual.any());
  EXPECT_EQ(stats.words, 2);
  EXPECT_EQ(stats.corrected_words, 2);
  EXPECT_EQ(stats.uncorrectable_words, 0);
  EXPECT_EQ(stats.faulty_bits_before, 2);
  EXPECT_EQ(stats.faulty_bits_after, 0);
}

TEST(EccScrub, TwoFaultsInOneWordAreKept) {
  fault::FaultMask mask(1, 64);
  mask.set_sa0(10, true);
  mask.set_flip(20, true);  // any plane counts against the budget
  EccScrubStats stats;
  const fault::FaultMask residual = apply_secded_scrub(mask, {}, &stats);
  EXPECT_TRUE(residual.sa0(10));
  EXPECT_TRUE(residual.flip(20));
  EXPECT_EQ(stats.uncorrectable_words, 1);
  EXPECT_EQ(stats.faulty_bits_after, 2);
}

TEST(EccScrub, InterleavingSplitsAdjacentBursts) {
  fault::FaultMask burst(1, 64);
  burst.set_sa0(30, true);
  burst.set_sa0(31, true);  // adjacent pair: a physical burst

  // Without interleaving both land in the same word: uncorrectable.
  EXPECT_TRUE(apply_secded_scrub(burst, {64, 1}).any());
  // Interleave 2 puts even/odd columns into different words: both correct.
  EXPECT_FALSE(apply_secded_scrub(burst, {32, 2}).any());
}

TEST(EccScrub, WordsDoNotSpanGridRows) {
  // One faulty cell in each of two rows, columns aligned: with word_bits
  // covering a whole row, each row is its own word, so both are single
  // faults and both are corrected.
  fault::FaultMask mask(2, 32);
  mask.set_sa1(5, true);        // row 0
  mask.set_sa1(32 + 5, true);   // row 1
  EccScrubStats stats;
  const fault::FaultMask residual =
      apply_secded_scrub(mask, {32, 1}, &stats);
  EXPECT_FALSE(residual.any());
  EXPECT_EQ(stats.words, 2);
  EXPECT_EQ(stats.corrected_words, 2);
}

TEST(EccScrub, ShortTailWordIsProcessed) {
  fault::FaultMask mask(1, 70);  // one full word + a 6-cell tail
  mask.set_sa0(68, true);
  EccScrubStats stats;
  const fault::FaultMask residual = apply_secded_scrub(mask, {}, &stats);
  EXPECT_FALSE(residual.any());
  EXPECT_EQ(stats.words, 2);
}

TEST(EccScrub, RejectsNonsenseOptions) {
  fault::FaultMask mask(1, 8);
  EXPECT_THROW(apply_secded_scrub(mask, {0, 1}), std::invalid_argument);
  EXPECT_THROW(apply_secded_scrub(mask, {64, 0}), std::invalid_argument);
}

TEST(EccScrub, OverheadReflectsCodeRate) {
  EccScrubStats stats;
  // SEC-DED over w data bits costs hamming_parity_bits(w) + 1 parity
  // cells: (72,64) -> 8/64, (39,32) -> 7/32. The old implementation
  // hardcoded the 64-bit parity count for every organization.
  EXPECT_DOUBLE_EQ(stats.overhead({64, 1}), 0.125);
  EXPECT_DOUBLE_EQ(stats.overhead({32, 1}), 7.0 / 32.0);
  EXPECT_DOUBLE_EQ(stats.overhead({8, 1}), 5.0 / 8.0);
}

// ---- online canary monitor -----------------------------------------------------

MonitorConfig monitor_config(CanaryPolicy policy) {
  MonitorConfig cfg;
  cfg.grid = {8, 8};
  cfg.test_period = 4;
  cfg.slots_per_round = 8;
  cfg.policy = policy;
  cfg.seed = 5;
  return cfg;
}

TEST(Monitor, SteadyStateOverheadFormula) {
  const OnlineMonitor monitor(monitor_config(CanaryPolicy::kRoundRobin));
  EXPECT_DOUBLE_EQ(monitor.overhead_ops_per_inference(), 2.0 * 8 / 4);
}

TEST(Monitor, CleanMaskIsNeverFlagged) {
  const OnlineMonitor monitor(monitor_config(CanaryPolicy::kRoundRobin));
  const fault::FaultMask clean(8, 8);
  const DetectionOutcome outcome = monitor.run_until_detection(clean, 1000);
  EXPECT_FALSE(outcome.detected);
  EXPECT_EQ(outcome.inferences_elapsed, 1000);
  EXPECT_EQ(outcome.detecting_slot, -1);
}

TEST(Monitor, RoundRobinDetectsWithinOneFullSweep) {
  const MonitorConfig cfg = monitor_config(CanaryPolicy::kRoundRobin);
  const OnlineMonitor monitor(cfg);
  fault::FaultMask mask(8, 8);
  mask.set_sa1(37, true);
  const DetectionOutcome outcome = monitor.run_until_detection(mask, 100000);
  EXPECT_TRUE(outcome.detected);
  EXPECT_EQ(outcome.detecting_slot, 37);
  // 64 slots / 8 per round = 8 rounds max; one round per 4 inferences.
  EXPECT_LE(outcome.inferences_elapsed, 8 * 4);
}

TEST(Monitor, RandomPolicyEventuallyDetects) {
  const OnlineMonitor monitor(monitor_config(CanaryPolicy::kRandom));
  fault::FaultMask mask(8, 8);
  mask.set_flip(0, true);
  const DetectionOutcome outcome =
      monitor.run_until_detection(mask, 1000000);
  EXPECT_TRUE(outcome.detected);
  EXPECT_EQ(outcome.detecting_slot, 0);
}

TEST(Monitor, LargerCanaryBudgetShortensLatency) {
  // Average detection latency over fault positions: a 4x bigger canary
  // budget should not be slower on any deterministic sweep.
  MonitorConfig small_cfg = monitor_config(CanaryPolicy::kRoundRobin);
  small_cfg.slots_per_round = 2;
  MonitorConfig big_cfg = small_cfg;
  big_cfg.slots_per_round = 16;
  const OnlineMonitor slow(small_cfg);
  const OnlineMonitor fast(big_cfg);
  std::int64_t slow_total = 0;
  std::int64_t fast_total = 0;
  for (std::int64_t slot = 0; slot < 64; slot += 7) {
    fault::FaultMask mask(8, 8);
    mask.set_sa0(slot, true);
    slow_total += slow.run_until_detection(mask, 100000).inferences_elapsed;
    fast_total += fast.run_until_detection(mask, 100000).inferences_elapsed;
  }
  EXPECT_LT(fast_total, slow_total);
}

TEST(Monitor, GeometryMismatchThrows) {
  const OnlineMonitor monitor(monitor_config(CanaryPolicy::kRoundRobin));
  const fault::FaultMask wrong(4, 4);
  EXPECT_THROW(monitor.run_until_detection(wrong, 10), std::invalid_argument);
}

TEST(Monitor, InvalidConfigThrows) {
  MonitorConfig cfg = monitor_config(CanaryPolicy::kRoundRobin);
  cfg.test_period = 0;
  EXPECT_THROW(OnlineMonitor{cfg}, std::invalid_argument);
  cfg = monitor_config(CanaryPolicy::kRoundRobin);
  cfg.slots_per_round = 0;
  EXPECT_THROW(OnlineMonitor{cfg}, std::invalid_argument);
}

// ---- lifetime simulation ----------------------------------------------------

TEST(MitigationStack, NamesAreDescriptive) {
  EXPECT_EQ(MitigationStack{}.name(), "none");
  MitigationStack s;
  s.scrub = true;
  EXPECT_EQ(s.name(), "scrub");
  s.ecc = true;
  EXPECT_EQ(s.name(), "scrub+ECC");
  s.modular_redundancy = 3;
  EXPECT_EQ(s.name(), "scrub+ECC+3MR");
}

TEST(LifetimeCurve, ThresholdCrossingInterpolates) {
  LifetimeCurve curve;
  curve.points.push_back({100.0, 0.9, 0, 0, 0});
  curve.points.push_back({200.0, 0.5, 0, 0, 0});
  const auto hours = curve.hours_to_threshold(0.7);
  ASSERT_TRUE(hours.has_value());
  EXPECT_NEAR(*hours, 150.0, 1e-9);
}

TEST(LifetimeCurve, NoCrossingReturnsNullopt) {
  LifetimeCurve curve;
  curve.points.push_back({100.0, 0.9, 0, 0, 0});
  curve.points.push_back({200.0, 0.85, 0, 0, 0});
  EXPECT_FALSE(curve.hours_to_threshold(0.5).has_value());
}

TEST(LifetimeSimulator, RejectsInvalidConfigurations) {
  LifetimeConfig cfg;
  cfg.step_hours = 0.0;
  EXPECT_THROW(LifetimeSimulator{cfg}, std::invalid_argument);
  cfg = LifetimeConfig{};
  cfg.horizon_hours = cfg.step_hours / 2.0;
  EXPECT_THROW(LifetimeSimulator{cfg}, std::invalid_argument);
  cfg = LifetimeConfig{};
  cfg.wearout.shape = 0.0;
  EXPECT_THROW(LifetimeSimulator{cfg}, std::invalid_argument);
}

/// Small trained binary MLP shared by the lifetime tests (training once).
struct MlpFixture {
  data::SyntheticMnist dataset;
  bnn::Model model;
  data::Batch eval_batch;
  std::vector<bnn::LayerWorkload> layers;

  static const MlpFixture& instance() {
    static MlpFixture* fx = [] {
      auto* f = new MlpFixture();
      data::SyntheticMnistOptions opts;
      opts.size = 900;
      f->dataset = data::SyntheticMnist(opts);

      core::Rng rng(31);
      train::Graph graph("tiny-mlp");
      graph.add(std::make_unique<train::TFlatten>("flatten"));
      graph.add(std::make_unique<train::TDense>("stem", 784, 48, rng));
      graph.add(std::make_unique<train::TBatchNorm>("stem_bn", 48));
      graph.add(std::make_unique<train::TSign>("stem_sign"));
      graph.add(std::make_unique<train::TBinaryDense>("bd0", 48, 48, rng));
      graph.add(std::make_unique<train::TBatchNorm>("bd0_bn", 48));
      graph.add(std::make_unique<train::TSign>("bd0_sign"));
      graph.add(std::make_unique<train::TBinaryDense>("bd1", 48, 10, rng));
      graph.add(std::make_unique<train::TBatchNorm>("bd1_bn", 10));

      train::Adam adam(2e-3f);
      train::TrainConfig cfg;
      cfg.epochs = 3;
      cfg.batch_size = 32;
      cfg.train_samples = 700;
      train::fit(graph, adam, f->dataset, cfg);
      f->model = graph.to_inference_model();
      f->eval_batch = data::load_batch(f->dataset, 700, 200);
      f->layers = f->model
                      .analyze(tensor::FloatTensor(
                          tensor::Shape{1, 1, 28, 28}, 0.5f))
                      .binarized_layers;
      return f;
    }();
    return *fx;
  }
};

LifetimeConfig fast_lifetime_config() {
  LifetimeConfig cfg;
  cfg.grid = {16, 16};
  cfg.step_hours = 1000.0;
  cfg.horizon_hours = 4000.0;
  cfg.wearout.scale_hours = 6000.0;
  cfg.wearout.shape = 2.5;
  cfg.transients.upsets_per_grid_hour = 0.02;
  cfg.seed = 17;
  return cfg;
}

TEST(LifetimeSimulator, RejectsInvalidMitigations) {
  const MlpFixture& fx = MlpFixture::instance();
  const LifetimeSimulator sim(fast_lifetime_config());
  MitigationStack even;
  even.modular_redundancy = 2;
  EXPECT_THROW(sim.simulate(fx.model, fx.eval_batch, fx.layers, even),
               std::invalid_argument);
  MitigationStack ecc_only;
  ecc_only.ecc = true;  // ECC without scrub is rejected
  EXPECT_THROW(sim.simulate(fx.model, fx.eval_batch, fx.layers, ecc_only),
               std::invalid_argument);
}

TEST(LifetimeSimulator, CheckpointsCoverTheHorizon) {
  const MlpFixture& fx = MlpFixture::instance();
  const LifetimeConfig cfg = fast_lifetime_config();
  const LifetimeSimulator sim(cfg);
  const LifetimeCurve curve =
      sim.simulate(fx.model, fx.eval_batch, fx.layers, MitigationStack{});
  ASSERT_EQ(curve.points.size(), 4u);
  for (std::size_t i = 0; i < curve.points.size(); ++i) {
    EXPECT_NEAR(curve.points[i].hours, (i + 1) * cfg.step_hours, 1e-9);
  }
}

TEST(LifetimeSimulator, WearoutAccumulatesMonotonically) {
  const MlpFixture& fx = MlpFixture::instance();
  const LifetimeSimulator sim(fast_lifetime_config());
  const LifetimeCurve curve =
      sim.simulate(fx.model, fx.eval_batch, fx.layers, MitigationStack{});
  for (std::size_t i = 1; i < curve.points.size(); ++i) {
    EXPECT_GE(curve.points[i].stuck_cells_raw,
              curve.points[i - 1].stuck_cells_raw);
  }
  // By 2/3 of characteristic life a 16x16x2-layer deployment has failures.
  EXPECT_GT(curve.points.back().stuck_cells_raw, 0);
}

TEST(LifetimeSimulator, AccuracyDegradesTowardEndOfLife) {
  const MlpFixture& fx = MlpFixture::instance();
  LifetimeConfig cfg = fast_lifetime_config();
  cfg.horizon_hours = 6000.0;  // past the Weibull knee
  const LifetimeSimulator sim(cfg);
  const LifetimeCurve curve =
      sim.simulate(fx.model, fx.eval_batch, fx.layers, MitigationStack{});
  EXPECT_LT(curve.points.back().accuracy, curve.points.front().accuracy);
}

TEST(LifetimeSimulator, ScrubbingClearsTransientFlips) {
  const MlpFixture& fx = MlpFixture::instance();
  LifetimeConfig cfg = fast_lifetime_config();
  cfg.wearout.scale_hours = 1e9;  // isolate the transient process
  cfg.transients.upsets_per_grid_hour = 0.05;
  const LifetimeSimulator sim(cfg);

  const LifetimeCurve bare =
      sim.simulate(fx.model, fx.eval_batch, fx.layers, MitigationStack{});
  MitigationStack scrub;
  scrub.scrub = true;
  scrub.scrub_period_hours = cfg.step_hours;
  const LifetimeCurve scrubbed =
      sim.simulate(fx.model, fx.eval_batch, fx.layers, scrub);

  EXPECT_GT(bare.points.back().transient_flips, 0);
  EXPECT_EQ(scrubbed.points.back().transient_flips, 0);
}

TEST(LifetimeSimulator, EccHidesSparseWearoutFromComputation) {
  const MlpFixture& fx = MlpFixture::instance();
  LifetimeConfig cfg = fast_lifetime_config();
  cfg.transients.upsets_per_grid_hour = 0.0;
  const LifetimeSimulator sim(cfg);

  MitigationStack ecc;
  ecc.scrub = true;
  ecc.ecc = true;
  ecc.ecc_options.interleave = 4;
  const LifetimeCurve curve =
      sim.simulate(fx.model, fx.eval_batch, fx.layers, ecc);
  // Early in life faults are sparse: most words hold at most one faulty
  // cell, so the effective count is well below the raw count.
  bool some_correction = false;
  for (const LifetimePoint& p : curve.points) {
    EXPECT_LE(p.stuck_cells_effective, p.stuck_cells_raw);
    if (p.stuck_cells_raw > 0 &&
        p.stuck_cells_effective < p.stuck_cells_raw) {
      some_correction = true;
    }
  }
  EXPECT_TRUE(some_correction);
}

// ---- criticality analysis ----------------------------------------------------

TEST(Criticality, RanksEveryColumnSortedByDrop) {
  const MlpFixture& fx = MlpFixture::instance();
  CriticalityConfig cfg;
  cfg.grid = {8, 8};
  cfg.repetitions = 2;
  const CriticalityReport report =
      rank_columns(fx.model, fx.eval_batch, "bd0", cfg);
  ASSERT_EQ(report.columns.size(), 8u);
  EXPECT_GT(report.clean_accuracy, 0.5);
  for (std::size_t i = 1; i < report.columns.size(); ++i) {
    EXPECT_GE(report.columns[i - 1].drop, report.columns[i].drop);
  }
  for (const ColumnCriticality& c : report.columns) {
    EXPECT_NEAR(c.drop, report.clean_accuracy - c.accuracy, 1e-12);
  }
}

TEST(Criticality, OpFreeColumnsHaveExactlyZeroDrop) {
  // bd1 issues only 10 ops per image; on a 2x16 grid they occupy row 0,
  // columns 0..9 -- columns 10..15 carry no ops and must cost nothing.
  const MlpFixture& fx = MlpFixture::instance();
  CriticalityConfig cfg;
  cfg.grid = {2, 16};
  cfg.repetitions = 2;
  const CriticalityReport report =
      rank_columns(fx.model, fx.eval_batch, "bd1", cfg);
  std::set<std::int64_t> zero_drop;
  for (const ColumnCriticality& c : report.columns) {
    if (std::abs(c.drop) < 1e-12) zero_drop.insert(c.column);
  }
  for (std::int64_t c = 10; c < 16; ++c) {
    EXPECT_TRUE(zero_drop.count(c)) << "column " << c << " hosts no ops";
  }
}

TEST(Criticality, SelectiveHardeningNeverLosesToNoRepair) {
  const MlpFixture& fx = MlpFixture::instance();
  CriticalityConfig cfg;
  cfg.grid = {8, 8};
  cfg.repetitions = 3;
  const CriticalityReport report =
      rank_columns(fx.model, fx.eval_batch, "bd0", cfg);
  const HardeningOutcome outcome = evaluate_selective_hardening(
      fx.model, fx.eval_batch, "bd0", report, /*hardening_budget=*/2, cfg);
  // Repairing half the failed columns cannot hurt (small seed noise aside).
  EXPECT_GE(outcome.random_hardening, outcome.faulty_accuracy - 0.03);
  EXPECT_GE(outcome.guided_hardening, outcome.faulty_accuracy - 0.03);
  // Guided repair must track the ranking's promise within noise.
  EXPECT_GE(outcome.guided_hardening, outcome.random_hardening - 0.05);
}

TEST(Criticality, HardeningValidatesScenario) {
  const MlpFixture& fx = MlpFixture::instance();
  CriticalityConfig cfg;
  cfg.grid = {8, 8};
  CriticalityReport report;
  EXPECT_THROW(evaluate_selective_hardening(fx.model, fx.eval_batch, "bd0",
                                            report, 0, cfg),
               std::invalid_argument);
  EXPECT_THROW(evaluate_selective_hardening(fx.model, fx.eval_batch, "bd0",
                                            report, 5, cfg),
               std::invalid_argument);
  cfg.repetitions = 0;
  EXPECT_THROW(rank_columns(fx.model, fx.eval_batch, "bd0", cfg),
               std::invalid_argument);
}

TEST(LifetimeSimulator, MitigationExtendsUsefulLife) {
  const MlpFixture& fx = MlpFixture::instance();
  LifetimeConfig cfg = fast_lifetime_config();
  cfg.horizon_hours = 6000.0;
  cfg.transients.upsets_per_grid_hour = 0.05;
  const LifetimeSimulator sim(cfg);

  const LifetimeCurve bare =
      sim.simulate(fx.model, fx.eval_batch, fx.layers, MitigationStack{});
  MitigationStack full;
  full.scrub = true;
  full.scrub_period_hours = cfg.step_hours;
  full.ecc = true;
  full.ecc_options.interleave = 4;
  const LifetimeCurve mitigated =
      sim.simulate(fx.model, fx.eval_batch, fx.layers, full);

  // Average accuracy over the lifetime must improve under mitigation.
  double bare_mean = 0.0;
  double mitigated_mean = 0.0;
  for (std::size_t i = 0; i < bare.points.size(); ++i) {
    bare_mean += bare.points[i].accuracy;
    mitigated_mean += mitigated.points[i].accuracy;
  }
  EXPECT_GT(mitigated_mean, bare_mean);
}

}  // namespace
}  // namespace flim::reliability

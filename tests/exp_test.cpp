// Tests for the scenario layer: engine factory, spec validation, backend
// equivalence across the factory boundary, and runner determinism.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/rng.hpp"
#include "exp/scenario.hpp"
#include "fault/fault_generator.hpp"

namespace flim::exp {
namespace {

using tensor::BitMatrix;
using tensor::FloatTensor;
using tensor::IntTensor;
using tensor::Shape;

// ---------------------------------------------------------------------------
// Engine factory

TEST(EngineFactory, ParsesBackendNames) {
  EXPECT_EQ(parse_backend("reference"), Backend::kReference);
  EXPECT_EQ(parse_backend("flim"), Backend::kFlim);
  EXPECT_EQ(parse_backend("device"), Backend::kDevice);
  EXPECT_EQ(parse_backend("xfault"), Backend::kDevice);
  EXPECT_EQ(parse_backend("tmr"), Backend::kTmr);
  EXPECT_THROW(parse_backend("gpu"), std::invalid_argument);
  EXPECT_EQ(to_string(Backend::kDevice), "device");
}

TEST(EngineFactory, ValidatesSpecs) {
  EngineSpec tmr;
  tmr.backend = Backend::kTmr;
  tmr.tmr_replicas = 2;  // even
  EXPECT_THROW(validate(tmr), std::invalid_argument);
  tmr.tmr_replicas = 3;
  validate(tmr);

  EngineSpec device;
  device.backend = Backend::kDevice;
  device.device.crossbar.rows = 0;
  EXPECT_THROW(validate(device), std::invalid_argument);
}

TEST(EngineFactory, ReferenceRejectsFaultVectors) {
  EngineSpec spec;
  spec.backend = Backend::kReference;
  fault::FaultVectorEntry entry;
  entry.layer_name = "layer";
  entry.mask = fault::FaultMask(4, 4);
  fault::FaultVectorFile vectors;
  vectors.add(entry);
  EXPECT_THROW(make_engine(spec, vectors), std::invalid_argument);
  EXPECT_NE(make_engine(spec), nullptr);  // clean construction is fine
}

FloatTensor random_pm1(const Shape& shape, std::uint64_t seed) {
  core::Rng rng(seed);
  FloatTensor t(shape);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = rng.bernoulli(0.5) ? 1.0f : -1.0f;
  }
  return t;
}

/// Random product-term (gate-grid) fault vectors for one layer.
fault::FaultVectorFile gate_vectors(fault::FaultKind kind, double rate,
                                    std::uint64_t seed) {
  fault::FaultGenerator gen({3, 4});
  fault::FaultSpec spec;
  spec.kind = kind;
  spec.injection_rate = rate;
  spec.granularity = fault::FaultGranularity::kProductTerm;
  core::Rng rng(seed);
  fault::FaultVectorEntry entry;
  entry.layer_name = "layer";
  entry.kind = kind;
  entry.granularity = spec.granularity;
  entry.mask = gen.generate(spec, rng);
  fault::FaultVectorFile file;
  file.add(std::move(entry));
  return file;
}

// The cross-validation contract through the factory: FLIM and the device
// backend are bit-equivalent on the same product-term mask (DESIGN.md).
TEST(EngineFactory, FlimAndDeviceAgreeOnSameMask) {
  const BitMatrix a = BitMatrix::from_float(random_pm1(Shape{4, 12}, 3));
  const BitMatrix w = BitMatrix::from_float(random_pm1(Shape{3, 12}, 4));
  const fault::FaultVectorFile vectors =
      gate_vectors(fault::FaultKind::kStuckAt, 0.25, 11);

  EngineSpec flim_spec;
  flim_spec.backend = Backend::kFlim;
  EngineSpec device_spec;
  device_spec.backend = Backend::kDevice;

  IntTensor flim_out;
  make_engine(flim_spec, vectors)->execute("layer", a, w, 1, flim_out);
  IntTensor device_out;
  make_engine(device_spec, vectors)->execute("layer", a, w, 1, device_out);
  EXPECT_EQ(flim_out, device_out);
}

TEST(EngineFactory, TmrWithIdenticalReplicasMatchesSingleFlim) {
  const BitMatrix a = BitMatrix::from_float(random_pm1(Shape{5, 12}, 6));
  const BitMatrix w = BitMatrix::from_float(random_pm1(Shape{3, 12}, 7));
  const fault::FaultVectorFile vectors =
      gate_vectors(fault::FaultKind::kBitFlip, 0.3, 12);

  EngineSpec flim_spec;
  flim_spec.backend = Backend::kFlim;
  IntTensor flim_out;
  make_engine(flim_spec, vectors)->execute("layer", a, w, 1, flim_out);

  EngineSpec tmr_spec;
  tmr_spec.backend = Backend::kTmr;
  tmr_spec.tmr_replicas = 3;
  IntTensor tmr_out;
  make_engine(tmr_spec, vectors)->execute("layer", a, w, 1, tmr_out);
  EXPECT_EQ(tmr_out, flim_out);  // identical replicas vote unanimously
}

TEST(EngineFactory, TmrReplicaOverloadChecksCount) {
  EngineSpec spec;
  spec.backend = Backend::kTmr;
  spec.tmr_replicas = 3;
  const std::vector<fault::FaultVectorFile> two(2);
  EXPECT_THROW(make_engine(spec, two), std::invalid_argument);
  const std::vector<fault::FaultVectorFile> three(3);
  EXPECT_NE(make_engine(spec, three), nullptr);
}

// ---------------------------------------------------------------------------
// Scenario validation (no workload required)

ScenarioSpec tiny_scenario() {
  ScenarioSpec s;
  s.workload.model = "lenet";
  s.workload.eval_images = 16;
  s.workload.epochs = 1;
  s.workload.train_samples = 32;
  s.workload.weights_dir = ::testing::TempDir() + "flim_exp_weights";
  s.workload.measure_clean_accuracy = true;
  s.axes = {rate_axis({0.0, 0.2})};
  s.repetitions = 2;
  s.master_seed = 7;
  return s;
}

TEST(ScenarioValidation, AcceptsTheTinySpec) { validate(tiny_scenario()); }

TEST(ScenarioValidation, RejectsBadSpecs) {
  {
    ScenarioSpec s = tiny_scenario();
    s.repetitions = 0;
    EXPECT_THROW(validate(s), std::invalid_argument);
  }
  {
    ScenarioSpec s = tiny_scenario();
    s.jobs = 0;
    EXPECT_THROW(validate(s), std::invalid_argument);
  }
  {
    ScenarioSpec s = tiny_scenario();
    s.workload.model = "no-such-model";
    EXPECT_THROW(validate(s), std::invalid_argument);
  }
  {
    ScenarioSpec s = tiny_scenario();
    s.workload.eval_images = 0;
    EXPECT_THROW(validate(s), std::invalid_argument);
  }
  {
    ScenarioSpec s = tiny_scenario();
    s.grid = {0, 64};
    EXPECT_THROW(validate(s), std::invalid_argument);
  }
  {
    ScenarioSpec s = tiny_scenario();
    s.axes.push_back({AxisKind::kDynamicPeriod, "period", {}});
    EXPECT_THROW(validate(s), std::invalid_argument);
  }
  {
    // An axis value producing an invalid effective fault spec fails at
    // validation time, before any (expensive) workload load.
    ScenarioSpec s = tiny_scenario();
    s.axes = {rate_axis({0.0, 1.5})};
    EXPECT_THROW(validate(s), std::invalid_argument);
  }
  {
    ScenarioSpec s = tiny_scenario();
    s.engine.backend = Backend::kTmr;
    s.engine.tmr_replicas = 4;
    EXPECT_THROW(validate(s), std::invalid_argument);
  }
}

TEST(ScenarioValidation, RunnerValidatesAtConstruction) {
  ScenarioSpec s = tiny_scenario();
  s.repetitions = -3;
  EXPECT_THROW(ScenarioRunner{s}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Runner behaviour on a tiny trained workload (sub-second training; the
// weight cache is shared across tests through the fixed weights_dir).

const Workload& tiny_workload() {
  static const Workload* w = new Workload(load_workload(tiny_scenario().workload));
  return *w;
}

TEST(ScenarioRunner, SweepsTheGridRowMajor) {
  ScenarioSpec s = tiny_scenario();
  s.axes = {rate_axis({0.0, 0.3}), layers_axis({"conv1", "combined"})};
  std::vector<std::string> order;
  ScenarioRunner runner(s);
  const ScenarioResult result =
      runner.run(tiny_workload(), [&](const ScenarioPoint& p) {
        order.push_back(p.labels[0] + "/" + p.labels[1]);
      });
  ASSERT_EQ(result.points.size(), 4u);
  const std::vector<std::string> expected{"0.000/conv1", "0.000/combined",
                                          "0.300/conv1", "0.300/combined"};
  EXPECT_EQ(order, expected);
  EXPECT_EQ(result.axis_names, (std::vector<std::string>{"rate", "layer"}));
  EXPECT_EQ(result.axis_sizes, (std::vector<std::size_t>{2, 2}));
  // at() resolves row-major indices.
  EXPECT_EQ(result.at({1, 1}).mean, result.points[3].metric.mean);
  // Rate 0 on every series is the clean accuracy.
  EXPECT_DOUBLE_EQ(result.at({0, 0}).mean, tiny_workload().clean_accuracy);
  EXPECT_DOUBLE_EQ(result.at({0, 1}).mean, tiny_workload().clean_accuracy);
}

TEST(ScenarioRunner, RejectsFilterNamingNoBinarizedLayer) {
  {
    ScenarioSpec s = tiny_scenario();
    s.axes = {rate_axis({0.1}), layers_axis({"conv_1"})};  // typo for conv1
    EXPECT_THROW(ScenarioRunner(s).run(tiny_workload()),
                 std::invalid_argument);
  }
  {
    ScenarioSpec s = tiny_scenario();
    s.layer_filter = {"dens0"};  // typo for dense0
    EXPECT_THROW(ScenarioRunner(s).run(tiny_workload()),
                 std::invalid_argument);
  }
}

TEST(ScenarioRunner, IsDeterministicAcrossRuns) {
  ScenarioRunner runner(tiny_scenario());
  const ScenarioResult a = runner.run(tiny_workload());
  const ScenarioResult b = runner.run(tiny_workload());
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].metric.mean, b.points[i].metric.mean);
    EXPECT_EQ(a.points[i].metric.stddev, b.points[i].metric.stddev);
  }
}

TEST(ScenarioRunner, PooledRunIsBitIdenticalToSerial) {
  ScenarioSpec s = tiny_scenario();
  s.repetitions = 6;
  ScenarioRunner serial(s);
  const ScenarioResult sr = serial.run(tiny_workload());

  s.jobs = 4;
  ScenarioRunner pooled(s);
  const ScenarioResult pr = pooled.run(tiny_workload());

  ASSERT_EQ(sr.points.size(), pr.points.size());
  for (std::size_t i = 0; i < sr.points.size(); ++i) {
    EXPECT_EQ(sr.points[i].metric.mean, pr.points[i].metric.mean);
    EXPECT_EQ(sr.points[i].metric.stddev, pr.points[i].metric.stddev);
    EXPECT_EQ(sr.points[i].metric.min, pr.points[i].metric.min);
    EXPECT_EQ(sr.points[i].metric.max, pr.points[i].metric.max);
  }
}

TEST(ScenarioRunner, FlimAndDeviceBackendsAgreeEndToEnd) {
  // The paper's FLIM <-> X-Fault cross-validation, through the scenario
  // layer: identical seeds and product-term masks must give identical
  // accuracy summaries on both backends. Kept tiny -- the device engine
  // simulates every XNOR gate-by-gate.
  ScenarioSpec s = tiny_scenario();
  s.workload.eval_images = 2;
  s.fault.kind = fault::FaultKind::kStuckAt;
  s.fault.granularity = fault::FaultGranularity::kProductTerm;
  s.grid = {8, 8};
  s.axes = {rate_axis({0.1})};
  s.repetitions = 1;

  const Workload workload = load_workload(s.workload);

  s.engine.backend = Backend::kFlim;
  const ScenarioResult flim = ScenarioRunner(s).run(workload);
  s.engine.backend = Backend::kDevice;
  const ScenarioResult device = ScenarioRunner(s).run(workload);

  ASSERT_EQ(flim.points.size(), 1u);
  ASSERT_EQ(device.points.size(), 1u);
  EXPECT_EQ(flim.points[0].metric.mean, device.points[0].metric.mean);
}

TEST(ScenarioRunner, TmrAtRateZeroMatchesCleanAccuracy) {
  ScenarioSpec s = tiny_scenario();
  s.engine.backend = Backend::kTmr;
  s.engine.tmr_replicas = 3;
  s.axes = {rate_axis({0.0})};
  s.repetitions = 1;
  const ScenarioResult result = ScenarioRunner(s).run(tiny_workload());
  EXPECT_DOUBLE_EQ(result.points[0].metric.mean,
                   tiny_workload().clean_accuracy);
}

TEST(ScenarioRunner, ReferenceBackendIgnoresFaultAxes) {
  ScenarioSpec s = tiny_scenario();
  s.engine.backend = Backend::kReference;
  s.axes = {rate_axis({0.0, 0.3})};
  s.repetitions = 1;
  const ScenarioResult result = ScenarioRunner(s).run(tiny_workload());
  EXPECT_DOUBLE_EQ(result.points[0].metric.mean,
                   tiny_workload().clean_accuracy);
  EXPECT_DOUBLE_EQ(result.points[1].metric.mean,
                   tiny_workload().clean_accuracy);
}

TEST(ScenarioRunner, NoAxesEvaluatesTheBasePoint) {
  ScenarioSpec s = tiny_scenario();
  s.axes.clear();
  s.fault.injection_rate = 0.0;
  const ScenarioResult result = ScenarioRunner(s).run(tiny_workload());
  ASSERT_EQ(result.points.size(), 1u);
  EXPECT_TRUE(result.axis_names.empty());
  EXPECT_DOUBLE_EQ(result.at({}).mean, tiny_workload().clean_accuracy);
}

TEST(ScenarioResult, EmitsTableCsvAndJson) {
  ScenarioSpec s = tiny_scenario();
  ScenarioRunner runner(s);
  const ScenarioResult result = runner.run(tiny_workload());
  const core::Table table = result.to_table();
  EXPECT_EQ(table.columns(),
            (std::vector<std::string>{"rate", "accuracy_%", "stddev_%",
                                      "min_%", "max_%"}));
  EXPECT_EQ(table.num_rows(), 2u);

  const std::string csv_path = ::testing::TempDir() + "exp_result.csv";
  const std::string json_path = ::testing::TempDir() + "exp_result.json";
  result.write_csv(csv_path);
  result.write_json(json_path);
  std::ifstream csv(csv_path);
  std::string header;
  std::getline(csv, header);
  EXPECT_EQ(header, "rate,accuracy_%,stddev_%,min_%,max_%");
  std::ifstream json(json_path);
  std::string first;
  std::getline(json, first);
  EXPECT_EQ(first, "[");
  std::remove(csv_path.c_str());
  std::remove(json_path.c_str());
}

// ---------------------------------------------------------------------------
// Composable fault expressions through the scenario layer.

TEST(ScenarioValidation, FaultExpressionsAreValidatedUpFront) {
  {
    ScenarioSpec s = tiny_scenario();
    s.fault_expr = "no-such-model(rate=0.1)";
    EXPECT_THROW(validate(s), std::invalid_argument);
  }
  {
    ScenarioSpec s = tiny_scenario();
    s.axes = {fault_expr_axis({"bitflip(rate=0.1)"})};
    validate(s);  // a good expression axis passes
  }
  {
    // Expression axes are parsed at construction: bad values fail early.
    EXPECT_THROW(fault_expr_axis({"bitflip(rate=2)"}), std::invalid_argument);
  }
  {
    // drift cannot produce static product-term planes.
    ScenarioSpec s = tiny_scenario();
    s.fault.granularity = fault::FaultGranularity::kProductTerm;
    s.fault_expr = "drift(rate=0.1)";
    s.axes.clear();
    EXPECT_THROW(validate(s), std::invalid_argument);
  }
  {
    // The device backend cannot realize data/time-dependent models.
    ScenarioSpec s = tiny_scenario();
    s.engine.backend = Backend::kDevice;
    s.fault_expr = "readdisturb(rate=0.1)";
    s.axes.clear();
    EXPECT_THROW(validate(s), std::invalid_argument);
  }
  {
    // Expression points carry their rates in the model params, so the
    // legacy clustered-needs-a-rate rule must not reject expr+clustered
    // scenarios (the base spec's injection_rate is unused there).
    ScenarioSpec s = tiny_scenario();
    s.fault.distribution = fault::FaultDistribution::kClustered;
    s.fault_expr = "bitflip(rate=0.1)";
    s.axes.clear();
    validate(s);
    s.fault.cluster_radius = 0.0;  // other placement checks still apply
    EXPECT_THROW(validate(s), std::invalid_argument);
  }
}

/// Runs `spec` on the shared tiny workload and returns the result.
ScenarioResult run_tiny(ScenarioSpec spec) {
  return ScenarioRunner(std::move(spec)).run(tiny_workload());
}

// Golden equivalence: a paper kind swept through the expression path must
// reproduce the legacy single-kind sweep summaries exactly -- same seeds,
// same masks, same numbers (the byte-identical-CSV contract, asserted on
// the summary values that feed the CSV writer).
TEST(ScenarioRunner, ExpressionPathMatchesLegacyKindPath) {
  struct Case {
    fault::FaultKind kind;
    const char* zero;
    const char* faulty;
  };
  const std::vector<Case> cases{
      {fault::FaultKind::kBitFlip, "bitflip(rate=0)", "bitflip(rate=0.25)"},
      {fault::FaultKind::kStuckAt, "stuckat(rate=0)", "stuckat(rate=0.25)"},
      {fault::FaultKind::kDynamic, "dynamic(rate=0,period=3)",
       "dynamic(rate=0.25,period=3)"},
  };
  for (const Case& c : cases) {
    ScenarioSpec legacy = tiny_scenario();
    legacy.fault.kind = c.kind;
    legacy.fault.dynamic_period = 3;
    legacy.axes = {rate_axis({0.0, 0.25})};

    ScenarioSpec expr = tiny_scenario();
    expr.axes = {fault_expr_axis({c.zero, c.faulty})};

    const ScenarioResult a = run_tiny(legacy);
    const ScenarioResult b = run_tiny(expr);
    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t i = 0; i < a.points.size(); ++i) {
      EXPECT_EQ(a.points[i].metric.mean, b.points[i].metric.mean)
          << fault::to_string(c.kind) << " point " << i;
      EXPECT_EQ(a.points[i].metric.stddev, b.points[i].metric.stddev);
      EXPECT_EQ(a.points[i].metric.min, b.points[i].metric.min);
      EXPECT_EQ(a.points[i].metric.max, b.points[i].metric.max);
    }
  }
}

TEST(ScenarioRunner, ExpressionPathMatchesLegacyOnDeviceBackend) {
  ScenarioSpec legacy = tiny_scenario();
  legacy.workload.eval_images = 2;
  legacy.engine.backend = Backend::kDevice;
  legacy.fault.kind = fault::FaultKind::kStuckAt;
  legacy.fault.granularity = fault::FaultGranularity::kProductTerm;
  legacy.grid = {8, 8};
  legacy.axes = {rate_axis({0.1})};
  legacy.repetitions = 1;

  ScenarioSpec expr = legacy;
  expr.axes = {fault_expr_axis({"stuckat(rate=0.1)"})};

  const Workload workload = load_workload(legacy.workload);
  const ScenarioResult a = ScenarioRunner(legacy).run(workload);
  const ScenarioResult b = ScenarioRunner(expr).run(workload);
  EXPECT_EQ(a.points[0].metric.mean, b.points[0].metric.mean);
}

// Satellite regression: product-term campaigns must stay bit-identical
// between serial and pooled execution (the injector's term-mask cache is
// shared state guarded against concurrent builds).
TEST(ScenarioRunner, PooledProductTermCampaignIsBitIdenticalToSerial) {
  ScenarioSpec s = tiny_scenario();
  s.fault.kind = fault::FaultKind::kStuckAt;
  s.fault.granularity = fault::FaultGranularity::kProductTerm;
  s.grid = {16, 16};
  s.axes = {rate_axis({0.0, 0.2})};
  s.repetitions = 6;

  const ScenarioResult serial = run_tiny(s);
  s.jobs = 4;
  const ScenarioResult pooled = run_tiny(s);
  ASSERT_EQ(serial.points.size(), pooled.points.size());
  for (std::size_t i = 0; i < serial.points.size(); ++i) {
    EXPECT_EQ(serial.points[i].metric.mean, pooled.points[i].metric.mean);
    EXPECT_EQ(serial.points[i].metric.stddev, pooled.points[i].metric.stddev);
    EXPECT_EQ(serial.points[i].metric.min, pooled.points[i].metric.min);
    EXPECT_EQ(serial.points[i].metric.max, pooled.points[i].metric.max);
  }
}

TEST(ScenarioRunner, NewModelsSweepEndToEnd) {
  // readdisturb / drift / coupling run end-to-end, deterministically, and a
  // rate-0 stack reproduces the clean accuracy.
  ScenarioSpec s = tiny_scenario();
  s.axes = {fault_expr_axis(
      {"readdisturb(rate=0)", "readdisturb(rate=0.3)", "drift(rate=0.3,tau=2)",
       "coupling(rate=0.1,strength=0.8)",
       "stuckat(rate=0.05)+drift(rate=0.1,tau=3)"})};
  const ScenarioResult a = run_tiny(s);
  const ScenarioResult b = run_tiny(s);
  ASSERT_EQ(a.points.size(), 5u);
  EXPECT_DOUBLE_EQ(a.points[0].metric.mean, tiny_workload().clean_accuracy);
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_GE(a.points[i].metric.mean, 0.0);
    EXPECT_LE(a.points[i].metric.mean, 1.0);
    EXPECT_EQ(a.points[i].metric.mean, b.points[i].metric.mean);
  }
  // The expression axis canonicalizes labels.
  EXPECT_EQ(a.points[4].labels[0], "stuckat(rate=0.05)+drift(rate=0.1,tau=3)");
}

TEST(ScenarioRunner, PooledExpressionSweepIsBitIdenticalToSerial) {
  ScenarioSpec s = tiny_scenario();
  s.axes = {fault_expr_axis(
      {"drift(rate=0.2,tau=2)", "coupling(rate=0.1,strength=1)"})};
  s.repetitions = 4;
  const ScenarioResult serial = run_tiny(s);
  s.jobs = 3;
  const ScenarioResult pooled = run_tiny(s);
  for (std::size_t i = 0; i < serial.points.size(); ++i) {
    EXPECT_EQ(serial.points[i].metric.mean, pooled.points[i].metric.mean);
    EXPECT_EQ(serial.points[i].metric.stddev, pooled.points[i].metric.stddev);
  }
}

}  // namespace
}  // namespace flim::exp

// Tests for the X-Fault-style device-level engine, including the
// cross-validation against FLIM the paper performs.
#include <gtest/gtest.h>

#include "bnn/binary_dense.hpp"
#include "bnn/engine.hpp"
#include "bnn/flim_engine.hpp"
#include "core/rng.hpp"
#include "fault/fault_generator.hpp"
#include "xfault/device_engine.hpp"

namespace flim::xfault {
namespace {

using tensor::BitMatrix;
using tensor::FloatTensor;
using tensor::IntTensor;
using tensor::Shape;

FloatTensor random_pm1(const Shape& shape, std::uint64_t seed) {
  core::Rng rng(seed);
  FloatTensor t(shape);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = rng.bernoulli(0.5) ? 1.0f : -1.0f;
  }
  return t;
}

DeviceEngineConfig small_config(lim::LogicFamilyKind family) {
  DeviceEngineConfig cfg;
  cfg.crossbar.rows = 4;
  cfg.crossbar.cols = 16;  // 16 gates by default
  cfg.family = family;
  return cfg;
}

class DeviceEngineFamilies
    : public ::testing::TestWithParam<lim::LogicFamilyKind> {};

TEST_P(DeviceEngineFamilies, CleanExecutionMatchesReference) {
  const FloatTensor a = random_pm1(Shape{3, 9}, 1);
  const FloatTensor w = random_pm1(Shape{2, 9}, 2);
  const BitMatrix pa = BitMatrix::from_float(a);
  const BitMatrix pw = BitMatrix::from_float(w);

  bnn::ReferenceEngine ref;
  IntTensor expected;
  ref.execute("layer", pa, pw, 1, expected);

  DeviceEngine device(small_config(GetParam()));
  IntTensor actual;
  device.execute("layer", pa, pw, 1, actual);
  EXPECT_EQ(actual, expected);
  EXPECT_EQ(device.stats().xnor_ops, 3u * 2u * 9u);
}

INSTANTIATE_TEST_SUITE_P(BothFamilies, DeviceEngineFamilies,
                         ::testing::Values(lim::LogicFamilyKind::kMagic,
                                           lim::LogicFamilyKind::kImply));

fault::FaultVectorEntry gate_grid_entry(std::int64_t rows, std::int64_t cols) {
  fault::FaultVectorEntry e;
  e.layer_name = "layer";
  e.granularity = fault::FaultGranularity::kProductTerm;
  e.mask = fault::FaultMask(rows, cols);
  return e;
}

// The cross-validation experiment: FLIM product-term faults and device-level
// faults must agree bit-exactly on the same mask (the paper verifies fault
// distribution and mapping against X-Fault).
TEST(DeviceEngine, StuckAtMatchesFlimProductTerm) {
  const FloatTensor a = random_pm1(Shape{4, 12}, 3);
  const FloatTensor w = random_pm1(Shape{3, 12}, 4);
  const BitMatrix pa = BitMatrix::from_float(a);
  const BitMatrix pw = BitMatrix::from_float(w);

  fault::FaultVectorEntry entry = gate_grid_entry(3, 4);  // 12 gates
  entry.kind = fault::FaultKind::kStuckAt;
  entry.mask.set_sa0(2, true);
  entry.mask.set_sa1(7, true);
  entry.mask.set_sa0(11, true);

  bnn::FlimEngine flim;
  flim.set_layer_fault(entry);
  IntTensor flim_out;
  flim.execute("layer", pa, pw, 1, flim_out);

  DeviceEngineConfig cfg = small_config(lim::LogicFamilyKind::kMagic);
  DeviceEngine device(cfg);
  device.set_layer_fault(entry);
  IntTensor device_out;
  device.execute("layer", pa, pw, 1, device_out);

  EXPECT_EQ(device_out, flim_out);
}

TEST(DeviceEngine, BitFlipMatchesFlimProductTerm) {
  const FloatTensor a = random_pm1(Shape{2, 10}, 5);
  const FloatTensor w = random_pm1(Shape{2, 10}, 6);
  const BitMatrix pa = BitMatrix::from_float(a);
  const BitMatrix pw = BitMatrix::from_float(w);

  fault::FaultVectorEntry entry = gate_grid_entry(2, 4);  // 8 gates
  entry.kind = fault::FaultKind::kBitFlip;
  entry.mask.set_flip(1, true);
  entry.mask.set_flip(6, true);

  bnn::FlimEngine flim;
  flim.set_layer_fault(entry);
  IntTensor flim_out;
  flim.execute("layer", pa, pw, 1, flim_out);

  DeviceEngine device(small_config(lim::LogicFamilyKind::kImply));
  device.set_layer_fault(entry);
  IntTensor device_out;
  device.execute("layer", pa, pw, 1, device_out);

  EXPECT_EQ(device_out, flim_out);
}

TEST(DeviceEngine, RandomMaskMatchesFlimAcrossSeeds) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const FloatTensor a = random_pm1(Shape{3, 8}, 10 + seed);
    const FloatTensor w = random_pm1(Shape{2, 8}, 20 + seed);
    const BitMatrix pa = BitMatrix::from_float(a);
    const BitMatrix pw = BitMatrix::from_float(w);

    fault::FaultGenerator gen({2, 4});
    fault::FaultSpec spec;
    spec.kind = fault::FaultKind::kStuckAt;
    spec.injection_rate = 0.25;
    spec.granularity = fault::FaultGranularity::kProductTerm;
    core::Rng rng(seed);
    fault::FaultVectorEntry entry = gate_grid_entry(2, 4);
    entry.kind = fault::FaultKind::kStuckAt;
    entry.mask = gen.generate(spec, rng);

    bnn::FlimEngine flim;
    flim.set_layer_fault(entry);
    IntTensor flim_out;
    flim.execute("layer", pa, pw, 1, flim_out);

    DeviceEngine device(small_config(lim::LogicFamilyKind::kMagic));
    device.set_layer_fault(entry);
    IntTensor device_out;
    device.execute("layer", pa, pw, 1, device_out);

    EXPECT_EQ(device_out, flim_out) << "seed " << seed;
  }
}

TEST(DeviceEngine, DynamicFaultsFollowSchedule) {
  const FloatTensor a = random_pm1(Shape{1, 6}, 30);
  const FloatTensor w = random_pm1(Shape{1, 6}, 31);
  const BitMatrix pa = BitMatrix::from_float(a);
  const BitMatrix pw = BitMatrix::from_float(w);

  bnn::ReferenceEngine ref;
  IntTensor clean;
  ref.execute("layer", pa, pw, 1, clean);

  fault::FaultVectorEntry entry = gate_grid_entry(1, 6);
  entry.kind = fault::FaultKind::kDynamic;
  entry.dynamic_period = 2;
  for (std::int64_t s = 0; s < 6; ++s) entry.mask.set_flip(s, true);

  DeviceEngine device(small_config(lim::LogicFamilyKind::kMagic));
  device.set_layer_fault(entry);

  IntTensor out;
  device.execute("layer", pa, pw, 1, out);  // execution 0: inactive
  EXPECT_EQ(out, clean);
  device.execute("layer", pa, pw, 1, out);  // execution 1: active
  EXPECT_EQ(out.at2(0, 0), -clean.at2(0, 0));
  device.reset_time();
  device.execute("layer", pa, pw, 1, out);
  EXPECT_EQ(out, clean);
}

TEST(DeviceEngine, StatsTrackDeviceActivity) {
  const FloatTensor a = random_pm1(Shape{2, 4}, 40);
  const FloatTensor w = random_pm1(Shape{1, 4}, 41);
  DeviceEngine device(small_config(lim::LogicFamilyKind::kMagic));
  IntTensor out;
  device.execute("layer", BitMatrix::from_float(a), BitMatrix::from_float(w),
                 1, out);
  const DeviceEngineStats s = device.stats();
  EXPECT_EQ(s.xnor_ops, 8u);
  EXPECT_GT(s.crossbar.gate_steps, 0u);
  EXPECT_GT(s.crossbar.energy_joules, 0.0);
  EXPECT_GT(s.crossbar.sim_time_seconds, 0.0);
}

TEST(DeviceEngine, MultipleLayersKeepIndependentState) {
  const FloatTensor a = random_pm1(Shape{1, 4}, 50);
  const FloatTensor w = random_pm1(Shape{1, 4}, 51);
  const BitMatrix pa = BitMatrix::from_float(a);
  const BitMatrix pw = BitMatrix::from_float(w);

  bnn::ReferenceEngine ref;
  IntTensor clean;
  ref.execute("x", pa, pw, 1, clean);

  fault::FaultVectorEntry entry = gate_grid_entry(1, 4);
  for (std::int64_t s = 0; s < 4; ++s) entry.mask.set_flip(s, true);
  entry.layer_name = "faulty";

  DeviceEngine device(small_config(lim::LogicFamilyKind::kMagic));
  device.set_layer_fault(entry);
  IntTensor out_clean, out_faulty;
  device.execute("clean", pa, pw, 1, out_clean);
  device.execute("faulty", pa, pw, 1, out_faulty);
  EXPECT_EQ(out_clean, clean);
  EXPECT_EQ(out_faulty.at2(0, 0), -clean.at2(0, 0));
}

// The extended device-fault taxonomy reaches end-to-end inference through
// inject_device_fault: mask entries only express flip/stuck-at planes, but
// transition and sense-path faults act inside the gate execution.

TEST(DeviceEngine, InjectedIncorrectReadCorruptsExactlyItsGate) {
  const FloatTensor a = random_pm1(Shape{1, 4}, 60);
  const FloatTensor w = random_pm1(Shape{1, 4}, 61);
  const BitMatrix pa = BitMatrix::from_float(a);
  const BitMatrix pw = BitMatrix::from_float(w);

  bnn::ReferenceEngine ref;
  IntTensor clean;
  ref.execute("layer", pa, pw, 1, clean);

  DeviceEngineConfig cfg = small_config(lim::LogicFamilyKind::kMagic);
  cfg.crossbar.rows = 1;
  cfg.crossbar.cols = 4 * lim::kCellsPerGate;  // gates = K: term t -> gate t
  DeviceEngine device(cfg);
  // Inverted sense amp on gate 1's result cell: product term 1 reads
  // inverted for the single output element, shifting the accumulator by 2.
  const auto result_cell =
      static_cast<int>(lim::make_magic_family()->result_cell());
  device.inject_device_fault("layer", 0, 1 * lim::kCellsPerGate + result_cell,
                             lim::DeviceFaultKind::kIncorrectRead);
  IntTensor out;
  device.execute("layer", pa, pw, 1, out);
  EXPECT_EQ(std::abs(out.at2(0, 0) - clean.at2(0, 0)), 2);
}

TEST(DeviceEngine, InjectedSlowSetPinsGateResultLow) {
  // A complete 0->1 transition fault on a result cell: that gate can never
  // report "match", so its product term always contributes -1.
  const FloatTensor a = random_pm1(Shape{1, 4}, 62);
  const BitMatrix pa = BitMatrix::from_float(a);
  const BitMatrix pw = pa;  // weights equal activations: all terms match

  DeviceEngineConfig cfg = small_config(lim::LogicFamilyKind::kMagic);
  cfg.crossbar.rows = 1;
  cfg.crossbar.cols = 4 * lim::kCellsPerGate;
  DeviceEngine device(cfg);
  IntTensor out;
  device.execute("layer", pa, pw, 1, out);
  EXPECT_EQ(out.at2(0, 0), 4);  // perfect match without faults

  const auto result_cell =
      static_cast<int>(lim::make_magic_family()->result_cell());
  device.inject_device_fault("layer", 0, 2 * lim::kCellsPerGate + result_cell,
                             lim::DeviceFaultKind::kSlowSet, 1.0);
  device.execute("layer", pa, pw, 1, out);
  EXPECT_EQ(out.at2(0, 0), 2);  // one term flips +1 -> -1
}

TEST(DeviceEngine, DriftIsHarmlessWhileGatePulsesRetainMargin) {
  // Parametric drift leaves results correct while the (weaker) gate-step
  // overdrive still completes the switching event; past that margin the
  // computation corrupts -- at severities the March write pulses still
  // tolerate (March escape tested in reliability_test), i.e. compute fails
  // before offline test can see it.
  const FloatTensor a = random_pm1(Shape{2, 6}, 63);
  const FloatTensor w = random_pm1(Shape{2, 6}, 64);
  const BitMatrix pa = BitMatrix::from_float(a);
  const BitMatrix pw = BitMatrix::from_float(w);

  bnn::ReferenceEngine ref;
  IntTensor clean;
  ref.execute("layer", pa, pw, 1, clean);

  const auto result_cell =
      static_cast<int>(lim::make_magic_family()->result_cell());
  const auto run_with_drift = [&](double severity) {
    DeviceEngine device(small_config(lim::LogicFamilyKind::kMagic));
    for (std::int64_t g = 0; g < 16; ++g) {
      device.inject_device_fault(
          "layer", g / 4, (g % 4) * lim::kCellsPerGate + result_cell,
          lim::DeviceFaultKind::kDrift, severity);
    }
    IntTensor out;
    device.execute("layer", pa, pw, 1, out);
    return out;
  };

  EXPECT_EQ(run_with_drift(0.3), clean);   // within the gate-pulse margin
  EXPECT_NE(run_with_drift(0.5), clean);   // margin exceeded
}

}  // namespace
}  // namespace flim::xfault

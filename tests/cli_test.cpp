// Tests for the flim_cli argument parser and the file-level commands.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "cli/args.hpp"
#include "cli/commands.hpp"
#include "fault/fault_vector_file.hpp"

namespace flim::cli {
namespace {

Args parse(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv{"flim_cli"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return Args::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, ParsesCommandAndFlags) {
  const Args args = parse({"generate", "--rate", "0.1", "--verbose",
                           "--layers", "a,b"});
  EXPECT_EQ(args.command(), "generate");
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 0.1);
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_FALSE(args.has("missing"));
  EXPECT_EQ(args.get_list("layers"), (std::vector<std::string>{"a", "b"}));
}

TEST(Args, EmptyCommandLine) {
  const Args args = parse({});
  EXPECT_TRUE(args.command().empty());
}

TEST(Args, TypedAccessorsValidate) {
  const Args args = parse({"x", "--n", "12", "--bad", "abc"});
  EXPECT_EQ(args.get_int("n", 0), 12);
  EXPECT_EQ(args.get_int("absent", 7), 7);
  EXPECT_THROW(args.get_int("bad", 0), std::exception);
}

TEST(Args, DoubleListParsing) {
  const Args args = parse({"x", "--rates", "0,0.05,0.1"});
  const auto rates = args.get_double_list("rates");
  ASSERT_EQ(rates.size(), 3u);
  EXPECT_DOUBLE_EQ(rates[1], 0.05);
}

TEST(Args, RejectsDuplicatesAndUnknown) {
  EXPECT_THROW(parse({"x", "--a", "1", "--a", "2"}), std::invalid_argument);
  const Args args = parse({"x", "--known", "1"});
  EXPECT_THROW(args.require_known({"other"}), std::invalid_argument);
  args.require_known({"known"});
}

TEST(Args, PositionalsPrecedeFlags) {
  const Args args = parse({"campaign", "status", "a.jsonl", "--known", "1"});
  EXPECT_EQ(args.command(), "campaign");
  EXPECT_EQ(args.positionals(),
            (std::vector<std::string>{"status", "a.jsonl"}));
  // Bare tokens after flags began can only be mistyped flags.
  EXPECT_THROW(parse({"x", "--a", "1", "stray", "extra"}),
               std::invalid_argument);
  // Commands that take no positionals keep rejecting them at require_known.
  EXPECT_THROW(args.require_known({"known"}), std::invalid_argument);
  args.require_known({"known"}, 2);
  EXPECT_THROW(args.require_known({"known"}, 1), std::invalid_argument);
}

TEST(Cli, CampaignRejectsReferenceEngine) {
  // --engine reference would run a "fault sweep" that injects nothing;
  // rejected before any model training happens.
  EXPECT_THROW(run(parse({"campaign", "--engine", "reference"})),
               std::invalid_argument);
  EXPECT_THROW(run(parse({"campaign", "--engine", "warp9"})),
               std::invalid_argument);
}

TEST(Cli, EvaluateRejectsReferenceEngine) {
  EXPECT_THROW(run(parse({"evaluate", "--vectors", "x.fvc", "--engine",
                          "reference"})),
               std::invalid_argument);
}

TEST(Cli, UnknownCommandFails) {
  EXPECT_EQ(run(parse({"frobnicate"})), 1);
  EXPECT_EQ(run(parse({"help"})), 0);
}

TEST(Cli, CampaignValidatesStoreFlags) {
  // --shard without --store would evaluate a slice nobody can merge.
  EXPECT_THROW(run(parse({"campaign", "--shard", "0/2"})),
               std::invalid_argument);
  // Malformed shard syntax and out-of-range indices fail loudly.
  EXPECT_THROW(run(parse({"campaign", "--shard", "2", "--store", "/tmp/x"})),
               std::invalid_argument);
  EXPECT_THROW(run(parse({"campaign", "--shard", "3/2", "--store",
                          "/tmp/x"})),
               std::invalid_argument);
  // Trailing garbage must not silently run the wrong partition.
  EXPECT_THROW(run(parse({"campaign", "--shard", "1/2x", "--store",
                          "/tmp/x"})),
               std::invalid_argument);
  EXPECT_THROW(run(parse({"campaign", "--shard", "1/2/4", "--store",
                          "/tmp/x"})),
               std::invalid_argument);
  EXPECT_THROW(run(parse({"campaign", "--shard", "/2", "--store",
                          "/tmp/x"})),
               std::invalid_argument);
}

TEST(Cli, MergeValidatesInput) {
  EXPECT_THROW(cmd_merge(parse({"merge"})), std::invalid_argument);
  EXPECT_THROW(cmd_merge(parse({"merge", "--inputs",
                                "/nonexistent/a.run.jsonl"})),
               std::exception);
}

TEST(Cli, ShardedCampaignMergeMatchesSingleRunCsv) {
  // End-to-end acceptance path: two shard processes + merge reproduce the
  // single-process CSV byte for byte. Tiny scale: 1-epoch LeNet, 8 images.
  const std::string dir = ::testing::TempDir() + "/cli_store";
  std::filesystem::create_directories(dir);
  const std::string weights = dir + "/weights";
  auto campaign = [&](std::initializer_list<const char*> extra) {
    std::vector<const char*> argv{
        "flim_cli", "campaign", "--model",   "lenet",           "--kind",
        "bitflip",  "--rates",  "0,0.2",     "--reps",          "2",
        "--epochs", "1",        "--samples", "32",              "--images",
        "8",        "--weights-dir",         weights.c_str()};
    argv.insert(argv.end(), extra.begin(), extra.end());
    return Args::parse(static_cast<int>(argv.size()), argv.data());
  };

  const std::string single_csv = dir + "/single.csv";
  const std::string s0 = dir + "/s0.run.jsonl";
  const std::string s1 = dir + "/s1.run.jsonl";
  const std::string merged_csv = dir + "/merged.csv";
  ASSERT_EQ(cmd_campaign(campaign({"--csv", single_csv.c_str()})), 0);
  ASSERT_EQ(cmd_campaign(campaign({"--shard", "0/2", "--store",
                                   s0.c_str()})),
            0);
  ASSERT_EQ(cmd_campaign(campaign({"--shard", "1/2", "--store",
                                   s1.c_str()})),
            0);
  const std::string inputs = s0 + "," + s1;
  ASSERT_EQ(cmd_merge(parse({"merge", "--inputs", inputs.c_str(), "--csv",
                             merged_csv.c_str()})),
            0);

  auto read = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };
  ASSERT_FALSE(read(single_csv).empty());
  EXPECT_EQ(read(single_csv), read(merged_csv));

  // Resuming the (complete) shard-0 file evaluates nothing and leaves the
  // run file untouched.
  const std::string before = read(s0);
  ASSERT_EQ(cmd_campaign(campaign({"--shard", "0/2", "--resume",
                                   s0.c_str()})),
            0);
  EXPECT_EQ(read(s0), before);

  // --store alone resumes in place (rerunning the command after a kill must
  // never truncate the checkpoint)...
  ASSERT_EQ(cmd_campaign(campaign({"--shard", "0/2", "--store",
                                   s0.c_str()})),
            0);
  EXPECT_EQ(read(s0), before);
  // ...and a different spec pointed at the same file refuses to clobber it.
  EXPECT_THROW(cmd_campaign(campaign({"--seed", "7", "--shard", "0/2",
                                      "--store", s0.c_str()})),
               std::invalid_argument);
  EXPECT_EQ(read(s0), before);
  std::filesystem::remove_all(dir);
}

TEST(Cli, GenerateAndInspectRoundTrip) {
  const std::string path = ::testing::TempDir() + "/cli_vectors.bin";
  const std::string grid = "8x8";
  std::vector<const char*> argv{
      "flim_cli", "generate", "--out",  path.c_str(), "--layers",
      "conv1,conv2", "--kind", "stuckat", "--rate", "0.25",
      "--grid", grid.c_str(), "--seed", "9"};
  const Args gen_args =
      Args::parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(cmd_generate(gen_args), 0);

  const fault::FaultVectorFile file = fault::FaultVectorFile::load(path);
  EXPECT_EQ(file.size(), 2u);
  ASSERT_NE(file.find("conv1"), nullptr);
  EXPECT_EQ(file.find("conv1")->mask.count_sa0() +
                file.find("conv1")->mask.count_sa1(),
            16);  // 25% of 64

  std::vector<const char*> inspect{"flim_cli", "inspect", "--file",
                                   path.c_str()};
  EXPECT_EQ(cmd_inspect(Args::parse(4, inspect.data())), 0);
  std::filesystem::remove(path);
}

TEST(Cli, FaultsListsDescribesAndValidatesExpressions) {
  EXPECT_EQ(cmd_faults(parse({"faults"})), 0);
  EXPECT_EQ(cmd_faults(parse({"faults", "--describe", "drift"})), 0);
  EXPECT_EQ(cmd_faults(parse({"faults", "--expr",
                              "stuckat(rate=5e-4,sa1=0.7)+drift(tau=2000)"})),
            0);
  EXPECT_THROW(cmd_faults(parse({"faults", "--describe", "bogus"})),
               std::invalid_argument);
  EXPECT_THROW(cmd_faults(parse({"faults", "--expr", "bitflip(rate=9)"})),
               std::invalid_argument);
  EXPECT_THROW(cmd_faults(parse({"faults", "--unknown-flag", "1"})),
               std::invalid_argument);
}

TEST(Cli, GenerateWithFaultExpressionWritesComponentEntries) {
  const std::string path = ::testing::TempDir() + "/cli_expr_vectors.bin";
  std::vector<const char*> argv{
      "flim_cli", "generate", "--out", path.c_str(), "--layers",
      "conv1,dense0", "--fault", "stuckat(rate=0.25,sa1=1)+coupling(rate=0.1)",
      "--grid", "8x8", "--seed", "3"};
  EXPECT_EQ(cmd_generate(
                Args::parse(static_cast<int>(argv.size()), argv.data())),
            0);
  const fault::FaultVectorFile file = fault::FaultVectorFile::load(path);
  EXPECT_EQ(file.size(), 2u);
  ASSERT_NE(file.find("conv1"), nullptr);
  ASSERT_EQ(file.find("conv1")->components.size(), 2u);
  EXPECT_EQ(file.find("conv1")->components[0].mask.count_sa1(), 16);
  EXPECT_EQ(file.find("conv1")->describe(),
            "stuckat(rate=0.25,sa1=1)+coupling(rate=0.1)");
  // The summary table renders component entries too.
  std::vector<const char*> inspect{"flim_cli", "inspect", "--file",
                                   path.c_str()};
  EXPECT_EQ(cmd_inspect(Args::parse(4, inspect.data())), 0);
  std::filesystem::remove(path);

  // --fault conflicts with every legacy single-kind flag (silently
  // ignoring them would write masks that contradict the command line).
  EXPECT_THROW(cmd_generate(parse({"generate", "--out", "/tmp/x", "--layers",
                                   "a", "--fault", "bitflip", "--kind",
                                   "stuckat"})),
               std::invalid_argument);
  EXPECT_THROW(cmd_generate(parse({"generate", "--out", "/tmp/x", "--layers",
                                   "a", "--fault", "bitflip(rate=0.05)",
                                   "--faulty-rows", "4"})),
               std::invalid_argument);
  EXPECT_THROW(cmd_generate(parse({"generate", "--out", "/tmp/x", "--layers",
                                   "a", "--fault", "dynamic(rate=0.05)",
                                   "--period", "4"})),
               std::invalid_argument);
}

TEST(Cli, CampaignValidatesFaultExpressionFlags) {
  // Bad expressions fail before any training.
  EXPECT_THROW(run(parse({"campaign", "--fault", "warpcore(rate=0.1)"})),
               std::invalid_argument);
  // --fault and --kind are mutually exclusive.
  EXPECT_THROW(run(parse({"campaign", "--fault", "bitflip(rate=0.1)",
                          "--kind", "bitflip"})),
               std::invalid_argument);
  // Explicit --rates without a '@' placeholder is a likely mistake.
  EXPECT_THROW(run(parse({"campaign", "--fault", "bitflip(rate=0.1)",
                          "--rates", "0,0.1"})),
               std::invalid_argument);
  // Unsupported granularity/backend combinations fail at validation.
  EXPECT_THROW(run(parse({"campaign", "--fault", "drift(rate=0.1)",
                          "--granularity", "term"})),
               std::invalid_argument);
  EXPECT_THROW(run(parse({"campaign", "--fault", "readdisturb(rate=0.1)",
                          "--engine", "device"})),
               std::invalid_argument);
}

TEST(Cli, ExpressionCampaignStoreAndResumeRoundTrip) {
  // A composed-stack sweep via '@' expansion: store, then resume with a
  // differently spelled but canonically identical expression -- the
  // fingerprint must match and the CSVs must be byte-identical.
  const std::string dir = ::testing::TempDir() + "/cli_expr_store";
  std::filesystem::create_directories(dir);
  const std::string weights = dir + "/weights";
  const std::string run_file = dir + "/expr.run.jsonl";
  const std::string csv_a = dir + "/a.csv";
  const std::string csv_b = dir + "/b.csv";
  auto campaign = [&](const char* expr, const std::string& csv) {
    std::vector<const char*> argv{
        "flim_cli", "campaign", "--model", "lenet", "--fault", expr,
        "--rates", "0,0.2", "--reps", "2", "--epochs", "1",
        "--samples", "32", "--images", "8", "--weights-dir", weights.c_str(),
        "--store", run_file.c_str(), "--csv", csv.c_str()};
    return Args::parse(static_cast<int>(argv.size()), argv.data());
  };
  ASSERT_EQ(cmd_campaign(campaign("drift(rate=@,tau=2)+coupling(rate=0.05)",
                                  csv_a)),
            0);
  ASSERT_EQ(cmd_campaign(campaign("drift(tau=2.0, rate=@) + coupling( "
                                  "rate = 0.05 )",
                                  csv_b)),
            0);
  auto read = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };
  ASSERT_FALSE(read(csv_a).empty());
  EXPECT_EQ(read(csv_a), read(csv_b));
  std::filesystem::remove_all(dir);
}

TEST(Cli, GenerateValidatesInput) {
  EXPECT_THROW(cmd_generate(parse({"generate"})), std::invalid_argument);
  EXPECT_THROW(cmd_generate(parse({"generate", "--out", "/tmp/x", "--layers",
                                   "a", "--grid", "nonsense"})),
               std::exception);
  EXPECT_THROW(cmd_generate(parse({"generate", "--out", "/tmp/x", "--layers",
                                   "a", "--rate", "7"})),
               std::invalid_argument);
}

TEST(Cli, MarchCleanArrayPasses) {
  EXPECT_EQ(cmd_march(parse({"march", "--algorithm", "all", "--grid",
                             "8x8"})),
            0);
}

TEST(Cli, MarchFindsPlantedFault) {
  // Exit code 2 signals "defect detected", mirroring a test instrument.
  EXPECT_EQ(cmd_march(parse({"march", "--algorithm", "marchc-", "--grid",
                             "8x8", "--inject", "stuckat0", "--at", "1,2"})),
            2);
  // MATS+ famously misses the 1->0 transition fault.
  EXPECT_EQ(cmd_march(parse({"march", "--algorithm", "mats+", "--grid",
                             "8x8", "--inject", "slowreset", "--at", "1,2"})),
            0);
  EXPECT_EQ(cmd_march(parse({"march", "--algorithm", "marchx", "--grid",
                             "8x8", "--inject", "slowreset", "--at", "1,2"})),
            2);
}

TEST(Cli, MarchCoverageMode) {
  EXPECT_EQ(cmd_march(parse({"march", "--algorithm", "raw1", "--grid", "8x8",
                             "--coverage", "--samples", "4"})),
            0);
}

TEST(Cli, MarchValidatesInput) {
  EXPECT_THROW(cmd_march(parse({"march", "--algorithm", "bogus"})),
               std::invalid_argument);
  EXPECT_THROW(cmd_march(parse({"march", "--inject", "nonsense"})),
               std::invalid_argument);
  EXPECT_THROW(cmd_march(parse({"march", "--grid", "x"})), std::exception);
}

TEST(Cli, ScrubPipelineReducesFaultyBits) {
  const std::string in_path = ::testing::TempDir() + "/cli_scrub_in.bin";
  const std::string out_path = ::testing::TempDir() + "/cli_scrub_out.bin";
  ASSERT_EQ(cmd_generate(parse({"generate", "--out", in_path.c_str(),
                                "--layers", "conv1", "--kind", "stuckat",
                                "--rate", "0.005", "--grid", "64x64",
                                "--seed", "9"})),
            0);
  ASSERT_EQ(cmd_scrub(parse({"scrub", "--in", in_path.c_str(), "--out",
                             out_path.c_str(), "--word-bits", "32",
                             "--interleave", "4"})),
            0);
  const fault::FaultVectorFile before = fault::FaultVectorFile::load(in_path);
  const fault::FaultVectorFile after = fault::FaultVectorFile::load(out_path);
  ASSERT_EQ(after.size(), 1u);
  const auto faulty_bits = [](const fault::FaultVectorEntry& e) {
    return e.mask.count_flip() + e.mask.count_sa0() + e.mask.count_sa1();
  };
  EXPECT_LT(faulty_bits(*after.find("conv1")),
            faulty_bits(*before.find("conv1")));
  // Metadata survives the scrub.
  EXPECT_EQ(after.find("conv1")->kind, before.find("conv1")->kind);
  std::filesystem::remove(in_path);
  std::filesystem::remove(out_path);
}

TEST(Cli, ScrubValidatesInput) {
  EXPECT_THROW(cmd_scrub(parse({"scrub"})), std::invalid_argument);
  EXPECT_THROW(cmd_scrub(parse({"scrub", "--in", "/nonexistent/f.bin",
                                "--out", "/tmp/out.bin"})),
               std::exception);
}

TEST(Cli, EccListAndDescribe) {
  EXPECT_EQ(cmd_ecc(parse({"ecc"})), 0);
  EXPECT_EQ(cmd_ecc(parse({"ecc", "list"})), 0);
  EXPECT_EQ(cmd_ecc(parse({"ecc", "--describe", "bch"})), 0);
  EXPECT_THROW(cmd_ecc(parse({"ecc", "--describe", "bogus"})),
               std::invalid_argument);
  EXPECT_THROW(cmd_ecc(parse({"ecc", "bogus"})), std::invalid_argument);
}

TEST(Cli, EccExhaustShardMergeMatchesSingleProcess) {
  const std::string dir = ::testing::TempDir();
  const std::string single_csv = dir + "/cli_ecc_single.csv";
  const std::string merged_csv = dir + "/cli_ecc_merged.csv";
  const std::string s0 = dir + "/cli_ecc_s0.jsonl";
  const std::string s1 = dir + "/cli_ecc_s1.jsonl";
  std::filesystem::remove(s0);
  std::filesystem::remove(s1);
  ASSERT_EQ(cmd_ecc(parse({"ecc", "exhaust", "--codec", "hamming(d=8,k=5)",
                           "--weights", "1,2", "--chunk", "7", "--csv",
                           single_csv.c_str()})),
            0);
  ASSERT_EQ(cmd_ecc(parse({"ecc", "exhaust", "--codec", "hamming(d=8,k=5)",
                           "--weights", "1,2", "--chunk", "7", "--shard",
                           "0/2", "--store", s0.c_str()})),
            0);
  ASSERT_EQ(cmd_ecc(parse({"ecc", "exhaust", "--codec", "hamming(d=8,k=5)",
                           "--weights", "1,2", "--chunk", "7", "--shard",
                           "1/2", "--store", s1.c_str()})),
            0);
  const std::string inputs = s0 + "," + s1;
  ASSERT_EQ(cmd_ecc(parse({"ecc", "merge", "--inputs", inputs.c_str(),
                           "--csv", merged_csv.c_str()})),
            0);
  const auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  };
  const std::string single = slurp(single_csv);
  EXPECT_FALSE(single.empty());
  EXPECT_EQ(single, slurp(merged_csv));
  // A sharded run without a durable store cannot be merged later.
  EXPECT_THROW(cmd_ecc(parse({"ecc", "exhaust", "--codec", "secded",
                              "--shard", "0/2"})),
               std::invalid_argument);
  for (const std::string& p : {single_csv, merged_csv, s0, s1}) {
    std::filesystem::remove(p);
  }
}

TEST(Cli, MonitorDetectsVectorFileFaults) {
  const std::string path = ::testing::TempDir() + "/cli_monitor.bin";
  ASSERT_EQ(cmd_generate(parse({"generate", "--out", path.c_str(),
                                "--layers", "conv1", "--kind", "stuckat",
                                "--rate", "0.01", "--grid", "32x32",
                                "--seed", "4"})),
            0);
  EXPECT_EQ(cmd_monitor(parse({"monitor", "--vectors", path.c_str(),
                               "--layer", "conv1", "--policy", "roundrobin",
                               "--reps", "3"})),
            0);
  std::filesystem::remove(path);
}

TEST(Cli, MonitorValidatesInput) {
  EXPECT_THROW(cmd_monitor(parse({"monitor"})), std::invalid_argument);
  const std::string path = ::testing::TempDir() + "/cli_monitor2.bin";
  ASSERT_EQ(cmd_generate(parse({"generate", "--out", path.c_str(),
                                "--layers", "a", "--kind", "bitflip",
                                "--rate", "0.1", "--grid", "8x8"})),
            0);
  // Unknown layer and unknown policy both fail loudly.
  EXPECT_THROW(cmd_monitor(parse({"monitor", "--vectors", path.c_str(),
                                  "--layer", "nope"})),
               std::invalid_argument);
  EXPECT_THROW(cmd_monitor(parse({"monitor", "--vectors", path.c_str(),
                                  "--layer", "a", "--policy", "psychic"})),
               std::invalid_argument);
  std::filesystem::remove(path);
}

TEST(Cli, LifetimeValidatesMitigation) {
  // Invalid mitigation fails before any (expensive) model loading.
  EXPECT_THROW(cmd_lifetime(parse({"lifetime", "--mitigation", "prayers"})),
               std::exception);
}

}  // namespace
}  // namespace flim::cli

// Unit tests for the fault subsystem: specs, masks, generator, vector files,
// and the injector.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <utility>
#include <vector>

#include "core/rng.hpp"
#include "fault/fault_generator.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_mask.hpp"
#include "fault/fault_spec.hpp"
#include "fault/fault_vector_file.hpp"

namespace flim::fault {
namespace {

TEST(FaultSpec, ValidationRejectsNonsense) {
  FaultSpec bad;
  bad.injection_rate = 1.5;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = FaultSpec{};
  bad.faulty_rows = -1;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = FaultSpec{};
  bad.stuck_at_one_fraction = 2.0;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  validate(FaultSpec{});  // defaults are fine
}

TEST(FaultSpec, Names) {
  EXPECT_EQ(to_string(FaultKind::kBitFlip), "bit-flip");
  EXPECT_EQ(to_string(FaultKind::kStuckAt), "stuck-at");
  EXPECT_EQ(to_string(FaultKind::kDynamic), "dynamic");
  EXPECT_EQ(to_string(FaultGranularity::kOutputElement), "output-element");
  EXPECT_EQ(to_string(FaultGranularity::kProductTerm), "product-term");
}

TEST(FaultMask, PlanesStartClear) {
  FaultMask m(5, 7);
  EXPECT_EQ(m.num_slots(), 35);
  EXPECT_FALSE(m.any());
  EXPECT_EQ(m.count_flip(), 0);
}

TEST(FaultMask, RowColumnMarking) {
  FaultMask m(4, 6);
  m.mark_row_flip(2);
  EXPECT_EQ(m.count_flip(), 6);
  m.mark_col_flip(0);
  EXPECT_EQ(m.count_flip(), 6 + 4 - 1);  // intersection counted once
  EXPECT_TRUE(m.flip_at(2, 3));
  EXPECT_TRUE(m.flip_at(0, 0));
  EXPECT_FALSE(m.flip_at(0, 1));
}

TEST(FaultGenerator, ExactInjectionCount) {
  FaultGenerator gen({20, 20});
  core::Rng rng(1);
  FaultSpec spec;
  spec.kind = FaultKind::kBitFlip;
  spec.injection_rate = 0.1;
  const FaultMask m = gen.generate(spec, rng);
  EXPECT_EQ(m.count_flip(), 40);  // exactly 10% of 400
  EXPECT_EQ(m.count_sa0() + m.count_sa1(), 0);
}

TEST(FaultGenerator, StuckAtSplitsByFraction) {
  FaultGenerator gen({50, 50});
  core::Rng rng(2);
  FaultSpec spec;
  spec.kind = FaultKind::kStuckAt;
  spec.injection_rate = 0.2;  // 500 cells
  spec.stuck_at_one_fraction = 0.5;
  const FaultMask m = gen.generate(spec, rng);
  EXPECT_EQ(m.count_sa0() + m.count_sa1(), 500);
  EXPECT_EQ(m.count_flip(), 0);
  EXPECT_NEAR(static_cast<double>(m.count_sa1()), 250.0, 60.0);
}

TEST(FaultGenerator, StuckAtFractionExtremes) {
  FaultGenerator gen({10, 10});
  core::Rng rng(3);
  FaultSpec spec;
  spec.kind = FaultKind::kStuckAt;
  spec.injection_rate = 0.5;
  spec.stuck_at_one_fraction = 1.0;
  FaultMask m = gen.generate(spec, rng);
  EXPECT_EQ(m.count_sa1(), 50);
  EXPECT_EQ(m.count_sa0(), 0);
  spec.stuck_at_one_fraction = 0.0;
  m = gen.generate(spec, rng);
  EXPECT_EQ(m.count_sa0(), 50);
  EXPECT_EQ(m.count_sa1(), 0);
}

TEST(FaultGenerator, RowsAndColumnsMarked) {
  FaultGenerator gen({40, 10});
  core::Rng rng(4);
  FaultSpec spec;
  spec.kind = FaultKind::kBitFlip;
  spec.faulty_cols = 2;
  FaultMask m = gen.generate(spec, rng);
  EXPECT_EQ(m.count_flip(), 2 * 40);
  spec = FaultSpec{};
  spec.faulty_rows = 3;
  m = gen.generate(spec, rng);
  EXPECT_EQ(m.count_flip(), 3 * 10);
}

TEST(FaultGenerator, DeterministicPerSeed) {
  FaultGenerator gen({30, 30});
  FaultSpec spec;
  spec.injection_rate = 0.05;
  core::Rng r1(42), r2(42), r3(43);
  const FaultMask a = gen.generate(spec, r1);
  const FaultMask b = gen.generate(spec, r2);
  const FaultMask c = gen.generate(spec, r3);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(FaultGenerator, RejectsTooManyRows) {
  FaultGenerator gen({4, 4});
  core::Rng rng(5);
  FaultSpec spec;
  spec.faulty_rows = 5;
  EXPECT_THROW(gen.generate(spec, rng), std::invalid_argument);
}

namespace {

/// Mean pairwise Manhattan distance between marked flip slots.
double mean_pairwise_distance(const FaultMask& mask) {
  std::vector<std::pair<std::int64_t, std::int64_t>> sites;
  for (std::int64_t s = 0; s < mask.num_slots(); ++s) {
    if (mask.flip(s)) sites.emplace_back(s / mask.cols(), s % mask.cols());
  }
  double total = 0.0;
  std::int64_t pairs = 0;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    for (std::size_t j = i + 1; j < sites.size(); ++j) {
      total += std::abs(static_cast<double>(sites[i].first - sites[j].first)) +
               std::abs(static_cast<double>(sites[i].second - sites[j].second));
      ++pairs;
    }
  }
  return pairs > 0 ? total / static_cast<double>(pairs) : 0.0;
}

}  // namespace

TEST(FaultGenerator, ClusteredKeepsExactCount) {
  FaultGenerator gen({32, 32});
  core::Rng rng(6);
  FaultSpec spec;
  spec.kind = FaultKind::kBitFlip;
  spec.injection_rate = 0.05;
  spec.distribution = FaultDistribution::kClustered;
  spec.cluster_count = 2;
  const FaultMask m = gen.generate(spec, rng);
  EXPECT_EQ(m.count_flip(), 51);  // round(0.05 * 1024)
}

TEST(FaultGenerator, ClusteredSitesAreSpatiallyTighter) {
  FaultGenerator gen({48, 48});
  FaultSpec uniform;
  uniform.kind = FaultKind::kBitFlip;
  uniform.injection_rate = 0.02;
  FaultSpec clustered = uniform;
  clustered.distribution = FaultDistribution::kClustered;
  clustered.cluster_count = 1;  // single cluster: all pairs are intra-cluster
  clustered.cluster_radius = 1.5;

  // Averaged over seeds, cluster scatter is far tighter than uniform.
  double uniform_dist = 0.0;
  double clustered_dist = 0.0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    core::Rng r1(seed), r2(seed);
    uniform_dist += mean_pairwise_distance(gen.generate(uniform, r1));
    clustered_dist += mean_pairwise_distance(gen.generate(clustered, r2));
  }
  EXPECT_LT(clustered_dist, 0.25 * uniform_dist);
}

TEST(FaultGenerator, ClusteredIsDeterministicPerSeed) {
  FaultGenerator gen({24, 24});
  FaultSpec spec;
  spec.injection_rate = 0.1;
  spec.distribution = FaultDistribution::kClustered;
  core::Rng r1(9), r2(9);
  EXPECT_EQ(gen.generate(spec, r1), gen.generate(spec, r2));
}

TEST(FaultGenerator, ClusteredSaturationFallsBackToExactCount) {
  // Radius so small that one cluster cannot hold all faults: the uniform
  // fallback must still deliver the exact requested count.
  FaultGenerator gen({16, 16});
  core::Rng rng(10);
  FaultSpec spec;
  spec.kind = FaultKind::kStuckAt;
  spec.injection_rate = 0.5;
  spec.distribution = FaultDistribution::kClustered;
  spec.cluster_count = 1;
  spec.cluster_radius = 0.5;
  const FaultMask m = gen.generate(spec, rng);
  EXPECT_EQ(m.count_sa0() + m.count_sa1(), 128);
}

TEST(FaultGenerator, ClusterSpecValidation) {
  FaultGenerator gen({8, 8});
  core::Rng rng(11);
  FaultSpec spec;
  spec.distribution = FaultDistribution::kClustered;
  spec.cluster_radius = 0.0;
  EXPECT_THROW(gen.generate(spec, rng), std::invalid_argument);
  spec.cluster_radius = 1.0;
  spec.cluster_count = -1;
  EXPECT_THROW(gen.generate(spec, rng), std::invalid_argument);
}

TEST(FaultSpec, DistributionNames) {
  EXPECT_EQ(to_string(FaultDistribution::kUniform), "uniform");
  EXPECT_EQ(to_string(FaultDistribution::kClustered), "clustered");
}

TEST(FaultVectorFile, SerializationRoundTrip) {
  FaultGenerator gen({13, 17});
  core::Rng rng(6);
  FaultSpec flips;
  flips.injection_rate = 0.15;
  FaultSpec stuck;
  stuck.kind = FaultKind::kStuckAt;
  stuck.injection_rate = 0.1;

  FaultVectorFile file;
  file.add({"conv1", FaultKind::kBitFlip, FaultGranularity::kOutputElement, 0,
            gen.generate(flips, rng)});
  file.add({"dense0", FaultKind::kStuckAt, FaultGranularity::kProductTerm, 0,
            gen.generate(stuck, rng)});
  file.add({"conv2", FaultKind::kDynamic, FaultGranularity::kOutputElement, 3,
            gen.generate(flips, rng)});

  const auto bytes = file.serialize();
  const FaultVectorFile loaded = FaultVectorFile::deserialize(bytes);
  EXPECT_EQ(loaded, file);
  ASSERT_NE(loaded.find("conv2"), nullptr);
  EXPECT_EQ(loaded.find("conv2")->dynamic_period, 3);
  EXPECT_EQ(loaded.find("nonexistent"), nullptr);
}

TEST(FaultVectorFile, FileRoundTrip) {
  FaultGenerator gen({8, 8});
  core::Rng rng(7);
  FaultSpec spec;
  spec.injection_rate = 0.25;
  FaultVectorFile file;
  file.add({"layer", FaultKind::kBitFlip, FaultGranularity::kOutputElement, 0,
            gen.generate(spec, rng)});
  const std::string path = ::testing::TempDir() + "/flim_vectors_test.bin";
  file.save(path);
  const FaultVectorFile loaded = FaultVectorFile::load(path);
  EXPECT_EQ(loaded, file);
  std::filesystem::remove(path);
}

TEST(FaultVectorFile, RejectsCorruptData) {
  EXPECT_THROW(FaultVectorFile::deserialize({1, 2, 3}), std::invalid_argument);
  std::vector<std::uint8_t> bytes{'X', 'X', 'X', 'X', 'X', 'X', 'X', 'X',
                                  1,   0,   0,   0,   0,   0,   0,   0};
  EXPECT_THROW(FaultVectorFile::deserialize(bytes), std::invalid_argument);
}

FaultVectorEntry make_entry(FaultKind kind, std::int64_t rows,
                            std::int64_t cols) {
  FaultVectorEntry e;
  e.layer_name = "test";
  e.kind = kind;
  e.mask = FaultMask(rows, cols);
  return e;
}

TEST(FaultInjector, FlipNegatesMappedOps) {
  // Mask with slot 1 flipped on a 1x4 grid; feature map of one image with
  // 2 positions x 4 channels => ops 1 and 5 map to slot 1.
  FaultVectorEntry e = make_entry(FaultKind::kBitFlip, 1, 4);
  e.mask.set_flip(1, true);
  FaultInjector inj(e);

  tensor::IntTensor feature(tensor::Shape{2, 4});
  for (std::int64_t i = 0; i < 8; ++i) feature[i] = static_cast<int>(i + 1);
  const bool active = inj.advance_execution();
  EXPECT_TRUE(active);
  inj.apply_output_element(feature, 0, 2, active, /*full_scale=*/1);
  EXPECT_EQ(feature[0], 1);
  EXPECT_EQ(feature[1], -2);  // op 1 -> slot 1 flipped
  EXPECT_EQ(feature[5], -6);  // op 5 -> slot 1 flipped
  EXPECT_EQ(feature[7], 8);
}

TEST(FaultInjector, StuckAtPinsValues) {
  FaultVectorEntry e = make_entry(FaultKind::kStuckAt, 1, 3);
  e.mask.set_sa0(0, true);
  e.mask.set_sa1(2, true);
  FaultInjector inj(e);
  tensor::IntTensor feature(tensor::Shape{1, 3});
  feature[0] = 10;
  feature[1] = 20;
  feature[2] = 30;
  inj.apply_output_element(feature, 0, 1, true, /*full_scale=*/1);
  EXPECT_EQ(feature[0], -1);  // stuck-at-0 pins to -1 in the ±1 encoding
  EXPECT_EQ(feature[1], 20);
  EXPECT_EQ(feature[2], 1);  // stuck-at-1 pins to +1
}

TEST(FaultInjector, StuckAtPinsToFullScale) {
  // A stuck XNOR column reports all-match (+K) or all-mismatch (-K).
  FaultVectorEntry e = make_entry(FaultKind::kStuckAt, 1, 2);
  e.mask.set_sa0(0, true);
  e.mask.set_sa1(1, true);
  FaultInjector inj(e);
  tensor::IntTensor feature(tensor::Shape{1, 2});
  feature[0] = 3;
  feature[1] = -3;
  inj.apply_output_element(feature, 0, 1, true, /*full_scale=*/7);
  EXPECT_EQ(feature[0], -7);
  EXPECT_EQ(feature[1], 7);
}

TEST(FaultInjector, StuckAtDominatesFlipOnSameSlot) {
  FaultVectorEntry e = make_entry(FaultKind::kStuckAt, 1, 1);
  e.mask.set_flip(0, true);
  e.mask.set_sa1(0, true);
  FaultInjector inj(e);
  tensor::IntTensor feature(tensor::Shape{1, 1});
  feature[0] = -5;
  inj.apply_output_element(feature, 0, 1, true, /*full_scale=*/1);
  EXPECT_EQ(feature[0], 1);
}

TEST(FaultInjector, InactiveApplicationIsNoop) {
  FaultVectorEntry e = make_entry(FaultKind::kBitFlip, 1, 2);
  e.mask.set_flip(0, true);
  FaultInjector inj(e);
  tensor::IntTensor feature(tensor::Shape{1, 2});
  feature[0] = 3;
  inj.apply_output_element(feature, 0, 1, /*active=*/false, /*full_scale=*/1);
  EXPECT_EQ(feature[0], 3);
}

// Dynamic faults fire on executions period-1, 2*period-1, ...
class DynamicSchedule : public ::testing::TestWithParam<int> {};

TEST_P(DynamicSchedule, FiresEveryNthExecution) {
  const int period = GetParam();
  FaultVectorEntry e = make_entry(FaultKind::kDynamic, 2, 2);
  e.dynamic_period = period;
  FaultInjector inj(e);
  const int effective = std::max(1, period);
  for (int exec = 0; exec < 3 * effective; ++exec) {
    const bool fired = inj.advance_execution();
    EXPECT_EQ(fired, (exec % effective) == effective - 1)
        << "period=" << period << " exec=" << exec;
  }
}

INSTANTIATE_TEST_SUITE_P(Periods, DynamicSchedule,
                         ::testing::Values(0, 1, 2, 3, 4, 5));

TEST(FaultInjector, ResetTimeRestartsDynamicSchedule) {
  FaultVectorEntry e = make_entry(FaultKind::kDynamic, 1, 1);
  e.dynamic_period = 2;
  FaultInjector inj(e);
  EXPECT_FALSE(inj.advance_execution());
  EXPECT_TRUE(inj.advance_execution());
  inj.reset_time();
  EXPECT_FALSE(inj.advance_execution());
}

TEST(FaultInjector, StaticKindsAlwaysActive) {
  FaultVectorEntry e = make_entry(FaultKind::kBitFlip, 1, 1);
  FaultInjector inj(e);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(inj.advance_execution());
}

TEST(FaultInjector, TermMasksFollowSlotMapping) {
  // Grid 1x4 with slot 2 flipped; term (ch=0, k=2) and (ch=1, k=1) with K=5:
  // indices 2 and 6 -> slots 2 and 2 (6 mod 4 = 2).
  FaultVectorEntry e = make_entry(FaultKind::kBitFlip, 1, 4);
  e.granularity = FaultGranularity::kProductTerm;
  e.mask.set_flip(2, true);
  FaultInjector inj(e);
  const TermMasks& masks = inj.term_masks(2, 5);
  EXPECT_EQ(masks.flip.rows(), 2);
  EXPECT_EQ(masks.flip.cols(), 5);
  // ch0: term indices 0..4 -> slots 0,1,2,3,0 => k=2 flipped.
  EXPECT_EQ(masks.flip.get(0, 2), 1);
  EXPECT_EQ(masks.flip.get(0, 0), -1);
  // ch1: term indices 5..9 -> slots 1,2,3,0,1 => k=1 flipped.
  EXPECT_EQ(masks.flip.get(1, 1), 1);
  EXPECT_EQ(masks.flip.get(1, 2), -1);
}

TEST(FaultInjector, TermMasksAreCachedAndShapeChecked) {
  FaultVectorEntry e = make_entry(FaultKind::kBitFlip, 2, 2);
  e.granularity = FaultGranularity::kProductTerm;
  FaultInjector inj(e);
  const TermMasks& a = inj.term_masks(3, 4);
  const TermMasks& b = inj.term_masks(3, 4);
  EXPECT_EQ(&a, &b);
  EXPECT_THROW(inj.term_masks(4, 4), std::invalid_argument);
}

TEST(FaultInjector, RejectsEmptyMask) {
  FaultVectorEntry e;
  e.layer_name = "x";
  EXPECT_THROW(FaultInjector{e}, std::invalid_argument);
}

}  // namespace
}  // namespace flim::fault

// Unit tests for the fault subsystem: specs, masks, generator, vector files,
// the model registry + expression language, and the injector.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "core/rng.hpp"
#include "fault/fault_generator.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_mask.hpp"
#include "fault/fault_model.hpp"
#include "fault/fault_registry.hpp"
#include "fault/fault_spec.hpp"
#include "fault/fault_vector_file.hpp"

namespace flim::fault {
namespace {

/// Error message produced by validating `spec` (empty when it passes).
std::string validation_error(const FaultSpec& spec) {
  try {
    validate(spec);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "";
}

TEST(FaultSpec, ValidationRejectsNonsense) {
  FaultSpec bad;
  bad.injection_rate = 1.5;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = FaultSpec{};
  bad.faulty_rows = -1;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = FaultSpec{};
  bad.stuck_at_one_fraction = 2.0;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  validate(FaultSpec{});  // defaults are fine
}

TEST(FaultSpec, ValidationRejectsNonsenseClusterParameters) {
  // Each rejection carries an actionable message naming the bad value.
  FaultSpec bad;
  bad.cluster_count = -3;
  EXPECT_NE(validation_error(bad).find("cluster count"), std::string::npos);
  EXPECT_NE(validation_error(bad).find("-3"), std::string::npos);

  bad = FaultSpec{};
  bad.cluster_radius = 0.0;
  EXPECT_NE(validation_error(bad).find("cluster radius"), std::string::npos);
  bad.cluster_radius = -1.5;
  EXPECT_NE(validation_error(bad).find("cluster radius"), std::string::npos);

  bad = FaultSpec{};
  bad.distribution = FaultDistribution::kClustered;
  bad.injection_rate = 0.0;
  const std::string error = validation_error(bad);
  EXPECT_NE(error.find("zero injection rate"), std::string::npos);
  EXPECT_NE(error.find("uniform"), std::string::npos);  // suggests the fix
  bad.injection_rate = 0.05;
  validate(bad);  // a positive rate makes clustered mode meaningful
}

TEST(FaultSpec, Names) {
  EXPECT_EQ(to_string(FaultKind::kBitFlip), "bit-flip");
  EXPECT_EQ(to_string(FaultKind::kStuckAt), "stuck-at");
  EXPECT_EQ(to_string(FaultKind::kDynamic), "dynamic");
  EXPECT_EQ(to_string(FaultGranularity::kOutputElement), "output-element");
  EXPECT_EQ(to_string(FaultGranularity::kProductTerm), "product-term");
}

TEST(FaultMask, PlanesStartClear) {
  FaultMask m(5, 7);
  EXPECT_EQ(m.num_slots(), 35);
  EXPECT_FALSE(m.any());
  EXPECT_EQ(m.count_flip(), 0);
}

TEST(FaultMask, RowColumnMarking) {
  FaultMask m(4, 6);
  m.mark_row_flip(2);
  EXPECT_EQ(m.count_flip(), 6);
  m.mark_col_flip(0);
  EXPECT_EQ(m.count_flip(), 6 + 4 - 1);  // intersection counted once
  EXPECT_TRUE(m.flip_at(2, 3));
  EXPECT_TRUE(m.flip_at(0, 0));
  EXPECT_FALSE(m.flip_at(0, 1));
}

TEST(FaultGenerator, ExactInjectionCount) {
  FaultGenerator gen({20, 20});
  core::Rng rng(1);
  FaultSpec spec;
  spec.kind = FaultKind::kBitFlip;
  spec.injection_rate = 0.1;
  const FaultMask m = gen.generate(spec, rng);
  EXPECT_EQ(m.count_flip(), 40);  // exactly 10% of 400
  EXPECT_EQ(m.count_sa0() + m.count_sa1(), 0);
}

TEST(FaultGenerator, StuckAtSplitsByFraction) {
  FaultGenerator gen({50, 50});
  core::Rng rng(2);
  FaultSpec spec;
  spec.kind = FaultKind::kStuckAt;
  spec.injection_rate = 0.2;  // 500 cells
  spec.stuck_at_one_fraction = 0.5;
  const FaultMask m = gen.generate(spec, rng);
  EXPECT_EQ(m.count_sa0() + m.count_sa1(), 500);
  EXPECT_EQ(m.count_flip(), 0);
  EXPECT_NEAR(static_cast<double>(m.count_sa1()), 250.0, 60.0);
}

TEST(FaultGenerator, StuckAtFractionExtremes) {
  FaultGenerator gen({10, 10});
  core::Rng rng(3);
  FaultSpec spec;
  spec.kind = FaultKind::kStuckAt;
  spec.injection_rate = 0.5;
  spec.stuck_at_one_fraction = 1.0;
  FaultMask m = gen.generate(spec, rng);
  EXPECT_EQ(m.count_sa1(), 50);
  EXPECT_EQ(m.count_sa0(), 0);
  spec.stuck_at_one_fraction = 0.0;
  m = gen.generate(spec, rng);
  EXPECT_EQ(m.count_sa0(), 50);
  EXPECT_EQ(m.count_sa1(), 0);
}

TEST(FaultGenerator, RowsAndColumnsMarked) {
  FaultGenerator gen({40, 10});
  core::Rng rng(4);
  FaultSpec spec;
  spec.kind = FaultKind::kBitFlip;
  spec.faulty_cols = 2;
  FaultMask m = gen.generate(spec, rng);
  EXPECT_EQ(m.count_flip(), 2 * 40);
  spec = FaultSpec{};
  spec.faulty_rows = 3;
  m = gen.generate(spec, rng);
  EXPECT_EQ(m.count_flip(), 3 * 10);
}

TEST(FaultGenerator, DeterministicPerSeed) {
  FaultGenerator gen({30, 30});
  FaultSpec spec;
  spec.injection_rate = 0.05;
  core::Rng r1(42), r2(42), r3(43);
  const FaultMask a = gen.generate(spec, r1);
  const FaultMask b = gen.generate(spec, r2);
  const FaultMask c = gen.generate(spec, r3);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(FaultGenerator, RejectsTooManyRows) {
  FaultGenerator gen({4, 4});
  core::Rng rng(5);
  FaultSpec spec;
  spec.faulty_rows = 5;
  EXPECT_THROW(gen.generate(spec, rng), std::invalid_argument);
}

namespace {

/// Mean pairwise Manhattan distance between marked flip slots.
double mean_pairwise_distance(const FaultMask& mask) {
  std::vector<std::pair<std::int64_t, std::int64_t>> sites;
  for (std::int64_t s = 0; s < mask.num_slots(); ++s) {
    if (mask.flip(s)) sites.emplace_back(s / mask.cols(), s % mask.cols());
  }
  double total = 0.0;
  std::int64_t pairs = 0;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    for (std::size_t j = i + 1; j < sites.size(); ++j) {
      total += std::abs(static_cast<double>(sites[i].first - sites[j].first)) +
               std::abs(static_cast<double>(sites[i].second - sites[j].second));
      ++pairs;
    }
  }
  return pairs > 0 ? total / static_cast<double>(pairs) : 0.0;
}

}  // namespace

TEST(FaultGenerator, ClusteredKeepsExactCount) {
  FaultGenerator gen({32, 32});
  core::Rng rng(6);
  FaultSpec spec;
  spec.kind = FaultKind::kBitFlip;
  spec.injection_rate = 0.05;
  spec.distribution = FaultDistribution::kClustered;
  spec.cluster_count = 2;
  const FaultMask m = gen.generate(spec, rng);
  EXPECT_EQ(m.count_flip(), 51);  // round(0.05 * 1024)
}

TEST(FaultGenerator, ClusteredSitesAreSpatiallyTighter) {
  FaultGenerator gen({48, 48});
  FaultSpec uniform;
  uniform.kind = FaultKind::kBitFlip;
  uniform.injection_rate = 0.02;
  FaultSpec clustered = uniform;
  clustered.distribution = FaultDistribution::kClustered;
  clustered.cluster_count = 1;  // single cluster: all pairs are intra-cluster
  clustered.cluster_radius = 1.5;

  // Averaged over seeds, cluster scatter is far tighter than uniform, while
  // the realized mask popcount is identical in both modes (the distribution
  // ablation varies only spatial correlation, never the fault budget).
  double uniform_dist = 0.0;
  double clustered_dist = 0.0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    core::Rng r1(seed), r2(seed);
    const FaultMask uniform_mask = gen.generate(uniform, r1);
    const FaultMask clustered_mask = gen.generate(clustered, r2);
    EXPECT_EQ(uniform_mask.count_flip(), clustered_mask.count_flip());
    uniform_dist += mean_pairwise_distance(uniform_mask);
    clustered_dist += mean_pairwise_distance(clustered_mask);
  }
  EXPECT_LT(clustered_dist, 0.25 * uniform_dist);
  EXPECT_LT(clustered_dist, uniform_dist);  // below the uniform baseline
}

TEST(FaultGenerator, ClusteredIsDeterministicPerSeed) {
  FaultGenerator gen({24, 24});
  FaultSpec spec;
  spec.injection_rate = 0.1;
  spec.distribution = FaultDistribution::kClustered;
  core::Rng r1(9), r2(9);
  EXPECT_EQ(gen.generate(spec, r1), gen.generate(spec, r2));
}

TEST(FaultGenerator, ClusteredSaturationFallsBackToExactCount) {
  // Radius so small that one cluster cannot hold all faults: the uniform
  // fallback must still deliver the exact requested count.
  FaultGenerator gen({16, 16});
  core::Rng rng(10);
  FaultSpec spec;
  spec.kind = FaultKind::kStuckAt;
  spec.injection_rate = 0.5;
  spec.distribution = FaultDistribution::kClustered;
  spec.cluster_count = 1;
  spec.cluster_radius = 0.5;
  const FaultMask m = gen.generate(spec, rng);
  EXPECT_EQ(m.count_sa0() + m.count_sa1(), 128);
}

TEST(FaultGenerator, ClusterSpecValidation) {
  FaultGenerator gen({8, 8});
  core::Rng rng(11);
  FaultSpec spec;
  spec.distribution = FaultDistribution::kClustered;
  spec.cluster_radius = 0.0;
  EXPECT_THROW(gen.generate(spec, rng), std::invalid_argument);
  spec.cluster_radius = 1.0;
  spec.cluster_count = -1;
  EXPECT_THROW(gen.generate(spec, rng), std::invalid_argument);
}

TEST(FaultSpec, DistributionNames) {
  EXPECT_EQ(to_string(FaultDistribution::kUniform), "uniform");
  EXPECT_EQ(to_string(FaultDistribution::kClustered), "clustered");
}

TEST(FaultGenerator, ClusteredPopcountMatchesUniformForStuckAt) {
  FaultGenerator gen({32, 32});
  FaultSpec uniform;
  uniform.kind = FaultKind::kStuckAt;
  uniform.injection_rate = 0.08;
  FaultSpec clustered = uniform;
  clustered.distribution = FaultDistribution::kClustered;
  clustered.cluster_count = 3;
  for (std::uint64_t seed = 20; seed < 24; ++seed) {
    core::Rng r1(seed), r2(seed);
    const FaultMask u = gen.generate(uniform, r1);
    const FaultMask c = gen.generate(clustered, r2);
    EXPECT_EQ(u.count_sa0() + u.count_sa1(), c.count_sa0() + c.count_sa1());
  }
}

TEST(FaultVectorFile, SerializationRoundTrip) {
  FaultGenerator gen({13, 17});
  core::Rng rng(6);
  FaultSpec flips;
  flips.injection_rate = 0.15;
  FaultSpec stuck;
  stuck.kind = FaultKind::kStuckAt;
  stuck.injection_rate = 0.1;

  FaultVectorFile file;
  file.add({"conv1", FaultKind::kBitFlip, FaultGranularity::kOutputElement, 0,
            gen.generate(flips, rng), {}});
  file.add({"dense0", FaultKind::kStuckAt, FaultGranularity::kProductTerm, 0,
            gen.generate(stuck, rng), {}});
  file.add({"conv2", FaultKind::kDynamic, FaultGranularity::kOutputElement, 3,
            gen.generate(flips, rng), {}});

  const auto bytes = file.serialize();
  // Legacy entries keep the version-1 layout byte for byte.
  EXPECT_EQ(bytes[8], 1u);
  const FaultVectorFile loaded = FaultVectorFile::deserialize(bytes);
  EXPECT_EQ(loaded, file);
  ASSERT_NE(loaded.find("conv2"), nullptr);
  EXPECT_EQ(loaded.find("conv2")->dynamic_period, 3);
  EXPECT_EQ(loaded.find("nonexistent"), nullptr);
}

TEST(FaultVectorFile, FileRoundTrip) {
  FaultGenerator gen({8, 8});
  core::Rng rng(7);
  FaultSpec spec;
  spec.injection_rate = 0.25;
  FaultVectorFile file;
  file.add({"layer", FaultKind::kBitFlip, FaultGranularity::kOutputElement, 0,
            gen.generate(spec, rng), {}});
  const std::string path = ::testing::TempDir() + "/flim_vectors_test.bin";
  file.save(path);
  const FaultVectorFile loaded = FaultVectorFile::load(path);
  EXPECT_EQ(loaded, file);
  std::filesystem::remove(path);
}

TEST(FaultVectorFile, RejectsCorruptData) {
  EXPECT_THROW(FaultVectorFile::deserialize({1, 2, 3}), std::invalid_argument);
  std::vector<std::uint8_t> bytes{'X', 'X', 'X', 'X', 'X', 'X', 'X', 'X',
                                  1,   0,   0,   0,   0,   0,   0,   0};
  EXPECT_THROW(FaultVectorFile::deserialize(bytes), std::invalid_argument);
}

FaultVectorEntry make_entry(FaultKind kind, std::int64_t rows,
                            std::int64_t cols) {
  FaultVectorEntry e;
  e.layer_name = "test";
  e.kind = kind;
  e.mask = FaultMask(rows, cols);
  return e;
}

TEST(FaultInjector, FlipNegatesMappedOps) {
  // Mask with slot 1 flipped on a 1x4 grid; feature map of one image with
  // 2 positions x 4 channels => ops 1 and 5 map to slot 1.
  FaultVectorEntry e = make_entry(FaultKind::kBitFlip, 1, 4);
  e.mask.set_flip(1, true);
  FaultInjector inj(e);

  tensor::IntTensor feature(tensor::Shape{2, 4});
  for (std::int64_t i = 0; i < 8; ++i) feature[i] = static_cast<int>(i + 1);
  const std::int64_t exec = inj.advance_execution();
  EXPECT_TRUE(inj.any_active(exec));
  inj.apply_output_element(feature, 0, 2, exec, /*full_scale=*/1);
  EXPECT_EQ(feature[0], 1);
  EXPECT_EQ(feature[1], -2);  // op 1 -> slot 1 flipped
  EXPECT_EQ(feature[5], -6);  // op 5 -> slot 1 flipped
  EXPECT_EQ(feature[7], 8);
}

TEST(FaultInjector, StuckAtPinsValues) {
  FaultVectorEntry e = make_entry(FaultKind::kStuckAt, 1, 3);
  e.mask.set_sa0(0, true);
  e.mask.set_sa1(2, true);
  FaultInjector inj(e);
  tensor::IntTensor feature(tensor::Shape{1, 3});
  feature[0] = 10;
  feature[1] = 20;
  feature[2] = 30;
  inj.apply_output_element(feature, 0, 1, /*execution=*/0, /*full_scale=*/1);
  EXPECT_EQ(feature[0], -1);  // stuck-at-0 pins to -1 in the ±1 encoding
  EXPECT_EQ(feature[1], 20);
  EXPECT_EQ(feature[2], 1);  // stuck-at-1 pins to +1
}

TEST(FaultInjector, StuckAtPinsToFullScale) {
  // A stuck XNOR column reports all-match (+K) or all-mismatch (-K).
  FaultVectorEntry e = make_entry(FaultKind::kStuckAt, 1, 2);
  e.mask.set_sa0(0, true);
  e.mask.set_sa1(1, true);
  FaultInjector inj(e);
  tensor::IntTensor feature(tensor::Shape{1, 2});
  feature[0] = 3;
  feature[1] = -3;
  inj.apply_output_element(feature, 0, 1, /*execution=*/0, /*full_scale=*/7);
  EXPECT_EQ(feature[0], -7);
  EXPECT_EQ(feature[1], 7);
}

TEST(FaultInjector, StuckAtDominatesFlipOnSameSlot) {
  FaultVectorEntry e = make_entry(FaultKind::kStuckAt, 1, 1);
  e.mask.set_flip(0, true);
  e.mask.set_sa1(0, true);
  FaultInjector inj(e);
  tensor::IntTensor feature(tensor::Shape{1, 1});
  feature[0] = -5;
  inj.apply_output_element(feature, 0, 1, /*execution=*/0, /*full_scale=*/1);
  EXPECT_EQ(feature[0], 1);
}

TEST(FaultInjector, InactiveApplicationIsNoop) {
  // A dynamic entry with period 2 is dormant on execution 0.
  FaultVectorEntry e = make_entry(FaultKind::kDynamic, 1, 2);
  e.dynamic_period = 2;
  e.mask.set_flip(0, true);
  FaultInjector inj(e);
  tensor::IntTensor feature(tensor::Shape{1, 2});
  feature[0] = 3;
  EXPECT_FALSE(inj.any_active(0));
  inj.apply_output_element(feature, 0, 1, /*execution=*/0, /*full_scale=*/1);
  EXPECT_EQ(feature[0], 3);
}

// Dynamic faults fire on executions period-1, 2*period-1, ...
class DynamicSchedule : public ::testing::TestWithParam<int> {};

TEST_P(DynamicSchedule, FiresEveryNthExecution) {
  const int period = GetParam();
  FaultVectorEntry e = make_entry(FaultKind::kDynamic, 2, 2);
  e.dynamic_period = period;
  FaultInjector inj(e);
  const int effective = std::max(1, period);
  for (int exec = 0; exec < 3 * effective; ++exec) {
    const bool fired = inj.any_active(inj.advance_execution());
    EXPECT_EQ(fired, (exec % effective) == effective - 1)
        << "period=" << period << " exec=" << exec;
  }
}

INSTANTIATE_TEST_SUITE_P(Periods, DynamicSchedule,
                         ::testing::Values(0, 1, 2, 3, 4, 5));

TEST(FaultInjector, ResetTimeRestartsDynamicSchedule) {
  FaultVectorEntry e = make_entry(FaultKind::kDynamic, 1, 1);
  e.dynamic_period = 2;
  FaultInjector inj(e);
  EXPECT_FALSE(inj.any_active(inj.advance_execution()));
  EXPECT_TRUE(inj.any_active(inj.advance_execution()));
  inj.reset_time();
  EXPECT_FALSE(inj.any_active(inj.advance_execution()));
}

TEST(FaultInjector, StaticKindsAlwaysActive) {
  FaultVectorEntry e = make_entry(FaultKind::kBitFlip, 1, 1);
  FaultInjector inj(e);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(inj.any_active(inj.advance_execution()));
  }
}

TEST(FaultInjector, TermMasksFollowSlotMapping) {
  // Grid 1x4 with slot 2 flipped; term (ch=0, k=2) and (ch=1, k=1) with K=5:
  // indices 2 and 6 -> slots 2 and 2 (6 mod 4 = 2).
  FaultVectorEntry e = make_entry(FaultKind::kBitFlip, 1, 4);
  e.granularity = FaultGranularity::kProductTerm;
  e.mask.set_flip(2, true);
  FaultInjector inj(e);
  const TermMasks* masks = inj.term_masks(2, 5, /*execution=*/0);
  ASSERT_NE(masks, nullptr);
  EXPECT_EQ(masks->flip.rows(), 2);
  EXPECT_EQ(masks->flip.cols(), 5);
  // ch0: term indices 0..4 -> slots 0,1,2,3,0 => k=2 flipped.
  EXPECT_EQ(masks->flip.get(0, 2), 1);
  EXPECT_EQ(masks->flip.get(0, 0), -1);
  // ch1: term indices 5..9 -> slots 1,2,3,0,1 => k=1 flipped.
  EXPECT_EQ(masks->flip.get(1, 1), 1);
  EXPECT_EQ(masks->flip.get(1, 2), -1);
}

TEST(FaultInjector, TermMasksAreCachedAndShapeChecked) {
  FaultVectorEntry e = make_entry(FaultKind::kBitFlip, 2, 2);
  e.mask.set_flip(0, true);
  e.granularity = FaultGranularity::kProductTerm;
  FaultInjector inj(e);
  const TermMasks* a = inj.term_masks(3, 4, 0);
  const TermMasks* b = inj.term_masks(3, 4, 1);
  EXPECT_NE(a, nullptr);
  EXPECT_EQ(a, b);  // same active signature -> same cached planes
  EXPECT_THROW(inj.term_masks(4, 4, 0), std::invalid_argument);
}

TEST(FaultInjector, TermMasksNullWhenDormant) {
  // A period-3 dynamic entry folds planes only on the firing execution.
  FaultVectorEntry e = make_entry(FaultKind::kDynamic, 1, 4);
  e.dynamic_period = 3;
  e.granularity = FaultGranularity::kProductTerm;
  e.mask.set_flip(1, true);
  FaultInjector inj(e);
  EXPECT_EQ(inj.term_masks(2, 4, 0), nullptr);
  EXPECT_EQ(inj.term_masks(2, 4, 1), nullptr);
  const TermMasks* firing = inj.term_masks(2, 4, 2);
  ASSERT_NE(firing, nullptr);
  EXPECT_EQ(firing->flip.get(0, 1), 1);
}

TEST(FaultInjector, RejectsEmptyMask) {
  FaultVectorEntry e;
  e.layer_name = "x";
  EXPECT_THROW(FaultInjector{e}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Model registry and the expression language.

TEST(FaultRegistry, ListsBuiltinModelsSorted) {
  const auto models = FaultRegistry::instance().models();
  std::vector<std::string> names;
  for (const FaultModel* m : models) names.push_back(m->info().name);
  const std::vector<std::string> expected{"bitflip",     "coupling",
                                          "drift",       "dynamic",
                                          "readdisturb", "stuckat"};
  EXPECT_EQ(names, expected);
}

TEST(FaultRegistry, UnknownModelNamesTheRegisteredOnes) {
  try {
    FaultRegistry::instance().get("gamma-ray");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("gamma-ray"), std::string::npos);
    EXPECT_NE(what.find("bitflip"), std::string::npos);
    EXPECT_NE(what.find("drift"), std::string::npos);
  }
}

TEST(FaultExpr, ParsesSingleModel) {
  const FaultStack stack = parse_fault_expr("bitflip(rate=0.1)");
  ASSERT_EQ(stack.items().size(), 1u);
  EXPECT_EQ(stack.items()[0].model->info().name, "bitflip");
  EXPECT_EQ(stack.items()[0].params.get("rate", 0.0), 0.1);
  EXPECT_EQ(stack.canonical(), "bitflip(rate=0.1)");
}

TEST(FaultExpr, CanonicalSortsParamsAndSurvivesRoundTrip) {
  const std::string canonical =
      canonical_fault_expr(" stuckat( sa1 = 0.7 , rate = 5e-4 ) ");
  EXPECT_EQ(canonical, "stuckat(rate=5e-04,sa1=0.7)");
  // Canonicalization is idempotent and spelling-independent.
  EXPECT_EQ(canonical_fault_expr(canonical), canonical);
  EXPECT_EQ(canonical_fault_expr("stuckat(rate=5e-04,sa1=0.7)"),
            canonical_fault_expr("stuckat(sa1=0.70,rate=5.0e-4)"));
}

TEST(FaultExpr, ParsesComposedStacksInOrder) {
  const FaultStack stack =
      parse_fault_expr("stuckat(rate=5e-4,sa1=0.7)+drift(tau=2000)+coupling");
  ASSERT_EQ(stack.items().size(), 3u);
  EXPECT_EQ(stack.items()[0].model->info().name, "stuckat");
  EXPECT_EQ(stack.items()[1].model->info().name, "drift");
  EXPECT_EQ(stack.items()[2].model->info().name, "coupling");
  EXPECT_EQ(stack.canonical(),
            "stuckat(rate=5e-04,sa1=0.7)+drift(tau=2000)+coupling");
}

TEST(FaultExpr, RejectsMalformedExpressions) {
  EXPECT_THROW(parse_fault_expr(""), std::invalid_argument);
  EXPECT_THROW(parse_fault_expr("   "), std::invalid_argument);
  EXPECT_THROW(parse_fault_expr("unknownmodel(rate=0.1)"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_expr("bitflip(rate)"), std::invalid_argument);
  EXPECT_THROW(parse_fault_expr("bitflip(rate=)"), std::invalid_argument);
  EXPECT_THROW(parse_fault_expr("bitflip(rate=0.1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_expr("bitflip(rate=0.1)x"), std::invalid_argument);
  EXPECT_THROW(parse_fault_expr("bitflip+"), std::invalid_argument);
  EXPECT_THROW(parse_fault_expr("bitflip(bogus=1)"), std::invalid_argument);
  EXPECT_THROW(parse_fault_expr("bitflip(rate=1.5)"), std::invalid_argument);
  EXPECT_THROW(parse_fault_expr("bitflip(rate=0.1,rate=0.2)"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_expr("dynamic(period=1.5)"),  // integer param
               std::invalid_argument);
}

TEST(FaultExpr, LegacySpecConvertsToOneModelStack) {
  FaultSpec spec;
  spec.kind = FaultKind::kStuckAt;
  spec.injection_rate = 0.05;
  spec.stuck_at_one_fraction = 0.7;
  const FaultStack stack = stack_from_spec(spec);
  ASSERT_EQ(stack.items().size(), 1u);
  EXPECT_EQ(stack.items()[0].model->info().name, "stuckat");
  EXPECT_EQ(stack.canonical(),
            "stuckat(cols=0,rate=0.05,rows=0,sa1=0.7)");
}

TEST(FaultExpr, StackRealizationMatchesLegacyGenerator) {
  // The registered paper models must consume the RNG exactly like the
  // legacy generator: same seed, same masks, for every kind.
  const lim::CrossbarGeometry grid{24, 16};
  FaultGenerator gen(grid);
  for (const FaultKind kind :
       {FaultKind::kBitFlip, FaultKind::kStuckAt, FaultKind::kDynamic}) {
    FaultSpec spec;
    spec.kind = kind;
    spec.injection_rate = 0.08;
    spec.faulty_rows = 2;
    spec.faulty_cols = 1;
    spec.dynamic_period = 4;
    core::Rng r1(77), r2(77);
    const FaultMask legacy = gen.generate(spec, r1);
    RealizeContext ctx;
    ctx.grid = grid;
    const std::vector<RealizedFault> components =
        stack_from_spec(spec).realize(ctx, r2);
    ASSERT_EQ(components.size(), 1u);
    EXPECT_EQ(components[0].mask, legacy) << to_string(kind);
  }
}

// ---------------------------------------------------------------------------
// The extended models.

TEST(ReadDisturbModel, FlipsOnlyMatchingReads) {
  const FaultStack stack = parse_fault_expr("readdisturb(rate=1)");
  RealizeContext ctx;
  ctx.grid = {1, 4};
  core::Rng rng(5);
  FaultVectorEntry entry = stack.realize_entry(
      "layer", FaultGranularity::kOutputElement, ctx, rng);
  ASSERT_EQ(entry.components.size(), 1u);
  EXPECT_EQ(entry.components[0].mask.count_flip(), 4);

  FaultInjector inj(entry);
  tensor::IntTensor feature(tensor::Shape{1, 4});
  feature[0] = 3;   // positive read: disturbed
  feature[1] = -3;  // negative read: untouched
  feature[2] = 0;   // at threshold: untouched
  feature[3] = 7;
  inj.apply_output_element(feature, 0, 1, /*execution=*/0, /*full_scale=*/8);
  EXPECT_EQ(feature[0], -3);
  EXPECT_EQ(feature[1], -3);
  EXPECT_EQ(feature[2], 0);
  EXPECT_EQ(feature[3], -7);
}

TEST(ReadDisturbModel, HonorsThresholdFraction) {
  const FaultStack stack =
      parse_fault_expr("readdisturb(rate=1,threshold=0.5)");
  RealizeContext ctx;
  ctx.grid = {1, 2};
  core::Rng rng(6);
  FaultInjector inj(stack.realize_entry(
      "layer", FaultGranularity::kOutputElement, ctx, rng));
  tensor::IntTensor feature(tensor::Shape{1, 2});
  feature[0] = 5;  // above 0.5 * 8 = 4: disturbed
  feature[1] = 4;  // at the cutoff: untouched
  inj.apply_output_element(feature, 0, 1, 0, /*full_scale=*/8);
  EXPECT_EQ(feature[0], -5);
  EXPECT_EQ(feature[1], 4);
}

TEST(DriftModel, StuckPopulationGrowsWithExecutions) {
  const FaultStack stack = parse_fault_expr("drift(rate=0.5,tau=50)");
  RealizeContext ctx;
  ctx.grid = {16, 16};
  core::Rng rng(7);
  FaultVectorEntry entry = stack.realize_entry(
      "layer", FaultGranularity::kOutputElement, ctx, rng);
  ASSERT_EQ(entry.components.size(), 1u);
  const RealizedFault& fault = entry.components[0];
  EXPECT_EQ(fault.mask.count_sa0() + fault.mask.count_sa1(), 128);
  EXPECT_EQ(fault.site_values.size(), 256u);

  // Count elements pinned at increasing execution indices: monotone, and
  // eventually the whole aged population is stuck.
  FaultInjector inj(entry);
  const auto pinned_at = [&](std::int64_t exec) {
    tensor::IntTensor feature(tensor::Shape{256, 1});
    for (std::int64_t i = 0; i < 256; ++i) feature[i] = 2;
    inj.apply_output_element(feature, 0, 256, exec, /*full_scale=*/9);
    std::int64_t pinned = 0;
    for (std::int64_t i = 0; i < 256; ++i) {
      if (feature[i] == 9 || feature[i] == -9) ++pinned;
    }
    return pinned;
  };
  const std::int64_t early = pinned_at(0);
  const std::int64_t mid = pinned_at(50);
  const std::int64_t late = pinned_at(100000);
  EXPECT_LE(early, mid);
  EXPECT_LT(mid, late);
  EXPECT_EQ(late, 128);
  // Before the first onset the component reports inactive (fast path).
  if (fault.first_active > 0) {
    EXPECT_FALSE(inj.any_active(fault.first_active - 1));
  }
  EXPECT_TRUE(inj.any_active(fault.first_active));
}

TEST(DriftModel, ClearedPolarityPlanesDisableTheCell) {
  // An ECC scrub repairs faults by clearing mask planes; a drift cell whose
  // polarity planes were cleared must inject nothing even past its onset
  // (the planes gate the pin, site_values only time it).
  const FaultStack stack = parse_fault_expr("drift(rate=1,tau=1,sa1=1)");
  RealizeContext ctx;
  ctx.grid = {1, 2};
  core::Rng rng(13);
  FaultVectorEntry entry = stack.realize_entry(
      "layer", FaultGranularity::kOutputElement, ctx, rng);
  entry.components[0].mask.set_sa1(0, false);  // "scrubbed" cell
  FaultInjector inj(entry);
  tensor::IntTensor feature(tensor::Shape{1, 2});
  feature[0] = 3;
  feature[1] = 3;
  inj.apply_output_element(feature, 0, 1, /*execution=*/100000,
                           /*full_scale=*/8);
  EXPECT_EQ(feature[0], 3);  // cleared planes: no fault
  EXPECT_EQ(feature[1], 8);  // intact cell pins to +K
}

TEST(CouplingModel, StrengthZeroIsExactlyTheSeeds) {
  const FaultStack stack = parse_fault_expr("coupling(rate=0.1,strength=0)");
  RealizeContext ctx;
  ctx.grid = {20, 20};
  core::Rng rng(8);
  const std::vector<RealizedFault> components = stack.realize(ctx, rng);
  EXPECT_EQ(components[0].mask.count_flip(), 40);  // 10% of 400 seeds only
}

TEST(CouplingModel, FullStrengthFlipsEveryNeighbor) {
  const FaultStack stack =
      parse_fault_expr("coupling(rate=0.01,strength=1,reach=1)");
  RealizeContext ctx;
  ctx.grid = {16, 16};
  core::Rng rng(9);
  const std::vector<RealizedFault> components = stack.realize(ctx, rng);
  const FaultMask& mask = components[0].mask;
  // Same seed, strength 1 vs 0: full strength must add every in-grid
  // neighbor, bounded by the 3x3 neighborhood of each seed.
  core::Rng rng2(9);
  const std::vector<RealizedFault> seeds_only =
      parse_fault_expr("coupling(rate=0.01,strength=0,reach=1)")
          .realize(ctx, rng2);
  EXPECT_GT(mask.count_flip(), seeds_only[0].mask.count_flip());
  EXPECT_LE(mask.count_flip(), 9 * seeds_only[0].mask.count_flip());
}

TEST(CouplingModel, SitesAreSpatiallyCorrelated) {
  // Equal flip budgets: coupling's realized sites must sit closer together
  // than a uniform bitflip mask of the same popcount.
  RealizeContext ctx;
  ctx.grid = {32, 32};
  double coupled_dist = 0.0;
  double uniform_dist = 0.0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    core::Rng r1(seed);
    const FaultMask coupled =
        parse_fault_expr("coupling(rate=0.02,strength=1,reach=1)")
            .realize(ctx, r1)[0]
            .mask;
    const double rate = static_cast<double>(coupled.count_flip()) / 1024.0;
    core::Rng r2(seed + 100);
    FaultSpec uniform;
    uniform.injection_rate = rate;
    const FaultMask baseline = FaultGenerator(ctx.grid).generate(uniform, r2);
    coupled_dist += mean_pairwise_distance(coupled);
    uniform_dist += mean_pairwise_distance(baseline);
  }
  EXPECT_LT(coupled_dist, uniform_dist);
}

// ---------------------------------------------------------------------------
// Composition and granularity rules.

TEST(FaultStack, ComponentsApplyInStackOrder) {
  // stuckat then bitflip: the flip negates the pinned value; in the other
  // order the pin wins. Both single-slot models on a 1x1 grid.
  RealizeContext ctx;
  ctx.grid = {1, 1};
  core::Rng r1(3);
  FaultVectorEntry pinned_then_flipped =
      parse_fault_expr("stuckat(rate=1,sa1=1)+bitflip(rate=1)")
          .realize_entry("l", FaultGranularity::kOutputElement, ctx, r1);
  FaultInjector inj1(pinned_then_flipped);
  tensor::IntTensor feature(tensor::Shape{1, 1});
  feature[0] = 2;
  inj1.apply_output_element(feature, 0, 1, 0, /*full_scale=*/5);
  EXPECT_EQ(feature[0], -5);  // pinned to +5, then flipped

  core::Rng r2(3);
  FaultVectorEntry flipped_then_pinned =
      parse_fault_expr("bitflip(rate=1)+stuckat(rate=1,sa1=1)")
          .realize_entry("l", FaultGranularity::kOutputElement, ctx, r2);
  FaultInjector inj2(flipped_then_pinned);
  feature[0] = 2;
  inj2.apply_output_element(feature, 0, 1, 0, /*full_scale=*/5);
  EXPECT_EQ(feature[0], 5);  // flip first, pin wins
}

TEST(FaultStack, TermPlanesFoldFlipsByXor) {
  // Two stacked flip mechanisms on the same slot cancel.
  RealizeContext ctx;
  ctx.grid = {1, 1};
  core::Rng rng(4);
  FaultVectorEntry entry =
      parse_fault_expr("bitflip(rate=1)+bitflip(rate=1)")
          .realize_entry("l", FaultGranularity::kProductTerm, ctx, rng);
  FaultInjector inj(entry);
  const TermMasks* masks = inj.term_masks(1, 1, 0);
  ASSERT_NE(masks, nullptr);
  EXPECT_EQ(masks->flip.get(0, 0), -1);  // flipped twice == clean
}

TEST(FaultStack, GranularitySupportIsValidated) {
  const FaultStack drift = parse_fault_expr("drift(rate=0.1)");
  drift.validate_granularity(FaultGranularity::kOutputElement);
  EXPECT_THROW(drift.validate_granularity(FaultGranularity::kProductTerm),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_expr("readdisturb(rate=0.1)")
                   .validate_granularity(FaultGranularity::kProductTerm),
               std::invalid_argument);

  // The injector enforces the same rule on realized entries.
  RealizeContext ctx;
  ctx.grid = {4, 4};
  core::Rng rng(5);
  FaultVectorEntry entry = parse_fault_expr("drift(rate=0.5)").realize_entry(
      "l", FaultGranularity::kProductTerm, ctx, rng);
  EXPECT_THROW(FaultInjector{entry}, std::invalid_argument);
}

TEST(FaultStack, DeviceBackendSupportIsValidated) {
  parse_fault_expr("bitflip(rate=0.1)+coupling(rate=0.1)")
      .validate_device_backend();
  EXPECT_THROW(
      parse_fault_expr("drift(rate=0.1)").validate_device_backend(),
      std::invalid_argument);
  EXPECT_THROW(
      parse_fault_expr("readdisturb(rate=0.1)").validate_device_backend(),
      std::invalid_argument);
}

TEST(FaultVectorFile, ComponentEntriesRoundTrip) {
  RealizeContext ctx;
  ctx.grid = {9, 5};
  core::Rng rng(11);
  const FaultStack stack =
      parse_fault_expr("stuckat(rate=0.2,sa1=0.7)+drift(rate=0.1,tau=300)");
  FaultVectorFile file;
  file.add(stack.realize_entry("conv1", FaultGranularity::kOutputElement, ctx,
                               rng));
  file.add(stack.realize_entry("dense0", FaultGranularity::kOutputElement,
                               ctx, rng));

  const auto bytes = file.serialize();
  EXPECT_EQ(bytes[8], 2u);  // component entries use the version-2 layout
  const FaultVectorFile loaded = FaultVectorFile::deserialize(bytes);
  EXPECT_EQ(loaded, file);
  ASSERT_NE(loaded.find("conv1"), nullptr);
  EXPECT_EQ(loaded.find("conv1")->components.size(), 2u);
  EXPECT_EQ(loaded.find("conv1")->describe(),
            "stuckat(rate=0.2,sa1=0.7)+drift(rate=0.1,tau=300)");
}

}  // namespace
}  // namespace flim::fault

// Unit tests for the LIM substrate: device model, crossbar, logic families,
// and the crossbar mapper.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "lim/crossbar.hpp"
#include "lim/logic_family.hpp"
#include "lim/mapper.hpp"
#include "lim/memristor.hpp"

namespace flim::lim {
namespace {

MemristorParams default_params() { return MemristorParams{}; }

TEST(Memristor, SetPulseDrivesToLrs) {
  Memristor m;
  const MemristorParams p = default_params();
  EXPECT_FALSE(m.read_bit(p));
  for (int i = 0; i < 64; ++i) m.apply_voltage(p, 2.0);
  EXPECT_TRUE(m.read_bit(p));
  EXPECT_GT(m.state(), 0.9);
}

TEST(Memristor, ResetPulseDrivesToHrs) {
  Memristor m;
  const MemristorParams p = default_params();
  m.set_state(1.0);
  for (int i = 0; i < 64; ++i) m.apply_voltage(p, -2.0);
  EXPECT_FALSE(m.read_bit(p));
  EXPECT_LT(m.state(), 0.1);
}

TEST(Memristor, SubThresholdVoltageDoesNotSwitch) {
  Memristor m;
  const MemristorParams p = default_params();
  for (int i = 0; i < 1000; ++i) {
    EXPECT_DOUBLE_EQ(m.apply_voltage(p, 0.5 * p.v_on), 0.0);
    EXPECT_DOUBLE_EQ(m.apply_voltage(p, 0.5 * p.v_off), 0.0);
  }
  EXPECT_DOUBLE_EQ(m.state(), 0.0);
}

TEST(Memristor, ResistanceInterpolatesExponentially) {
  Memristor m;
  const MemristorParams p = default_params();
  m.set_state(0.0);
  EXPECT_NEAR(m.resistance(p), p.r_off, 1.0);
  m.set_state(1.0);
  EXPECT_NEAR(m.resistance(p), p.r_on, 1.0);
  m.set_state(0.5);
  EXPECT_NEAR(m.resistance(p), std::sqrt(p.r_on * p.r_off), 100.0);
}

TEST(Memristor, StuckFaultsPinTheState) {
  const MemristorParams p = default_params();
  Memristor m0;
  m0.set_state(1.0);
  m0.set_fault(DeviceFaultKind::kStuckAt0);
  EXPECT_FALSE(m0.read_bit(p));
  for (int i = 0; i < 100; ++i) m0.apply_voltage(p, 2.0);
  EXPECT_FALSE(m0.read_bit(p));

  Memristor m1;
  m1.set_fault(DeviceFaultKind::kStuckAt1);
  EXPECT_TRUE(m1.read_bit(p));

  Memristor mc;
  mc.set_state(1.0);
  mc.set_fault(DeviceFaultKind::kStuckCurrent);
  for (int i = 0; i < 100; ++i) mc.apply_voltage(p, -2.0);
  EXPECT_TRUE(mc.read_bit(p));
}

TEST(Memristor, DriftSlowsSwitching) {
  const MemristorParams p = default_params();
  Memristor healthy, drifted;
  drifted.set_fault(DeviceFaultKind::kDrift, 0.8);
  for (int i = 0; i < 8; ++i) {
    healthy.apply_voltage(p, 2.0);
    drifted.apply_voltage(p, 2.0);
  }
  EXPECT_GT(healthy.state(), drifted.state());
}

TEST(Memristor, SlowSetBlocksOnlySetDirection) {
  const MemristorParams p = default_params();
  Memristor m;
  m.set_fault(DeviceFaultKind::kSlowSet, 1.0);
  for (int i = 0; i < 100; ++i) m.apply_voltage(p, 2.0);
  EXPECT_FALSE(m.read_bit(p));  // complete 0->1 transition fault

  m.set_state(1.0);
  for (int i = 0; i < 100; ++i) m.apply_voltage(p, -2.0);
  EXPECT_FALSE(m.read_bit(p));  // RESET direction still works
}

TEST(Memristor, SlowResetBlocksOnlyResetDirection) {
  const MemristorParams p = default_params();
  Memristor m;
  m.set_state(1.0);
  m.set_fault(DeviceFaultKind::kSlowReset, 1.0);
  for (int i = 0; i < 100; ++i) m.apply_voltage(p, -2.0);
  EXPECT_TRUE(m.read_bit(p));  // complete 1->0 transition fault

  m.set_state(0.0);
  for (int i = 0; i < 100; ++i) m.apply_voltage(p, 2.0);
  EXPECT_TRUE(m.read_bit(p));  // SET direction still works
}

TEST(Memristor, PartialSlowSetDelaysSwitching) {
  const MemristorParams p = default_params();
  Memristor healthy, slow;
  slow.set_fault(DeviceFaultKind::kSlowSet, 0.7);
  for (int i = 0; i < 8; ++i) {
    healthy.apply_voltage(p, 2.0);
    slow.apply_voltage(p, 2.0);
  }
  EXPECT_GT(healthy.state(), slow.state());
  EXPECT_GT(slow.state(), 0.0);  // weakened, not frozen
}

TEST(Memristor, ReadDisturbMovesStateOnlyOnReads) {
  Memristor m;
  m.set_fault(DeviceFaultKind::kReadDisturb, 0.25);
  EXPECT_DOUBLE_EQ(m.state(), 0.0);
  EXPECT_GT(m.apply_read_disturb(), 0.0);
  EXPECT_NEAR(m.state(), 0.25, 1e-12);
  for (int i = 0; i < 3; ++i) m.apply_read_disturb();
  EXPECT_NEAR(m.state(), 1.0, 1e-12);  // four reads fully SET the cell
  EXPECT_DOUBLE_EQ(m.apply_read_disturb(), 0.0);  // saturated
}

TEST(Memristor, HealthyCellIgnoresReadDisturbHook) {
  Memristor m;
  EXPECT_DOUBLE_EQ(m.apply_read_disturb(), 0.0);
  EXPECT_DOUBLE_EQ(m.state(), 0.0);
}

TEST(Memristor, IncorrectReadInvertsSenseOnly) {
  const MemristorParams p = default_params();
  Memristor m;
  m.set_fault(DeviceFaultKind::kIncorrectRead);
  EXPECT_TRUE(m.filter_sensed_bit(false));
  EXPECT_FALSE(m.filter_sensed_bit(true));
  EXPECT_DOUBLE_EQ(m.state(), 0.0);  // state untouched
  // Switching dynamics are unaffected by a sense-path fault.
  for (int i = 0; i < 64; ++i) m.apply_voltage(p, 2.0);
  EXPECT_GT(m.state(), 0.9);
}

TEST(Memristor, FaultKindNamesAreUniqueAndNonEmpty) {
  std::vector<std::string> names;
  for (const DeviceFaultKind kind : all_device_fault_kinds()) {
    names.push_back(to_string(kind));
    EXPECT_FALSE(names.back().empty());
    EXPECT_NE(names.back(), "unknown");
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(Crossbar, ReadDisturbFlipsStoredZeroAfterRepeatedReads) {
  CrossbarConfig cfg;
  cfg.rows = 2;
  cfg.cols = 4;
  CrossbarArray xbar(cfg);
  xbar.write_bit(0, 0, false);
  xbar.inject_device_fault(0, 0, DeviceFaultKind::kReadDisturb, 0.3);
  // First reads still return 0; accumulated disturbance eventually flips.
  EXPECT_FALSE(xbar.read_bit(0, 0));
  bool flipped = false;
  for (int i = 0; i < 6 && !flipped; ++i) flipped = xbar.read_bit(0, 0);
  EXPECT_TRUE(flipped);
}

TEST(Crossbar, SingleReadRdfFlipsAndMisreadsAtOnce) {
  CrossbarConfig cfg;
  cfg.rows = 1;
  cfg.cols = 4;
  CrossbarArray xbar(cfg);
  xbar.write_bit(0, 1, false);
  xbar.inject_device_fault(0, 1, DeviceFaultKind::kReadDisturb, 1.0);
  EXPECT_TRUE(xbar.read_bit(0, 1));   // classical RDF: one read SETs + misreads
  EXPECT_TRUE(xbar.read_bit(0, 1));   // state stays flipped
}

TEST(Crossbar, IncorrectReadCellMisreadsBothValues) {
  CrossbarConfig cfg;
  cfg.rows = 1;
  cfg.cols = 4;
  CrossbarArray xbar(cfg);
  xbar.inject_device_fault(0, 2, DeviceFaultKind::kIncorrectRead);
  xbar.write_bit(0, 2, true);
  EXPECT_FALSE(xbar.read_bit(0, 2));
  xbar.write_bit(0, 2, false);
  EXPECT_TRUE(xbar.read_bit(0, 2));
}

TEST(Crossbar, ReadDisturbOnOutCellMisreadsZeroResults) {
  // A severity-1.0 read-disturb fault on the result cell SETs it during the
  // read-out pulse: XNOR combinations whose true result is 0 (a != b) read
  // back as 1, while true-1 combinations stay correct.
  CrossbarConfig cfg;
  cfg.rows = 1;
  cfg.cols = kCellsPerGate;
  const auto family = make_magic_family();
  int wrong = 0;
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      CrossbarArray xbar(cfg);
      xbar.inject_device_fault(0, static_cast<int>(family->result_cell()),
                               DeviceFaultKind::kReadDisturb, 1.0);
      const bool got = xbar.execute_xnor(*family, 0, 0, a != 0, b != 0);
      if (got != (a == b)) ++wrong;
      EXPECT_TRUE(got);  // every read-out is dragged to 1
    }
  }
  EXPECT_EQ(wrong, 2);
}

TEST(Crossbar, IncorrectReadOnOutCellInvertsEveryResult) {
  CrossbarConfig cfg;
  cfg.rows = 1;
  cfg.cols = kCellsPerGate;
  const auto family = make_magic_family();
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      CrossbarArray xbar(cfg);
      xbar.inject_device_fault(0, static_cast<int>(family->result_cell()),
                               DeviceFaultKind::kIncorrectRead, 1.0);
      const bool got = xbar.execute_xnor(*family, 0, 0, a != 0, b != 0);
      EXPECT_EQ(got, !(a == b)) << "a=" << a << " b=" << b;
    }
  }
}

TEST(Crossbar, SlowSetGateCellBreaksXnorOutput) {
  // A complete 0->1 transition fault on the output cell keeps the MAGIC
  // result stuck where its schedule's RESET leaves it, corrupting the
  // combinations whose true result is 1.
  CrossbarConfig cfg;
  cfg.rows = 1;
  cfg.cols = kCellsPerGate;
  CrossbarArray xbar(cfg);
  const auto family = make_magic_family();
  xbar.inject_device_fault(0, static_cast<int>(family->result_cell()),
                           DeviceFaultKind::kSlowSet, 1.0);
  int wrong = 0;
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      const bool got = xbar.execute_xnor(*family, 0, 0, a != 0, b != 0);
      if (got != (a == b)) ++wrong;
    }
  }
  EXPECT_GT(wrong, 0);
}

TEST(Crossbar, WriteReadRoundTrip) {
  CrossbarConfig cfg;
  cfg.rows = 4;
  cfg.cols = 8;
  CrossbarArray xbar(cfg);
  xbar.write_bit(1, 3, true);
  xbar.write_bit(2, 5, false);
  EXPECT_TRUE(xbar.read_bit(1, 3));
  EXPECT_FALSE(xbar.read_bit(2, 5));
  EXPECT_FALSE(xbar.read_bit(0, 0));  // never written => HRS
}

TEST(Crossbar, GateCapacity) {
  CrossbarConfig cfg;
  cfg.rows = 40;
  cfg.cols = 10;
  CrossbarArray xbar(cfg);
  EXPECT_EQ(xbar.gates_per_row(), 2);
  EXPECT_EQ(xbar.num_gates(), 80);
}

TEST(Crossbar, StatsAccumulate) {
  CrossbarConfig cfg;
  cfg.rows = 1;
  cfg.cols = 4;
  CrossbarArray xbar(cfg);
  const auto family = make_magic_family();
  xbar.execute_xnor(*family, 0, 0, true, false);
  const CrossbarStats& s = xbar.stats();
  EXPECT_GT(s.set_pulses + s.reset_pulses, 0u);
  EXPECT_GT(s.gate_steps, 0u);
  EXPECT_EQ(s.reads, 1u);
  EXPECT_GT(s.energy_joules, 0.0);
  EXPECT_GT(s.sim_time_seconds, 0.0);
  xbar.reset_stats();
  EXPECT_EQ(xbar.stats().reads, 0u);
}

TEST(Crossbar, RejectsBadGeometry) {
  CrossbarConfig cfg;
  cfg.rows = 0;
  EXPECT_THROW(CrossbarArray{cfg}, std::invalid_argument);
}

// The decisive correctness test: both families compute XNOR on real device
// dynamics for every operand combination.
class XnorTruthTable
    : public ::testing::TestWithParam<std::tuple<LogicFamilyKind, int, int>> {};

TEST_P(XnorTruthTable, ComputesXnor) {
  const auto [kind, a, b] = GetParam();
  CrossbarConfig cfg;
  cfg.rows = 1;
  cfg.cols = kCellsPerGate;
  CrossbarArray xbar(cfg);
  const auto family = make_logic_family(kind);
  const bool result = xbar.execute_xnor(*family, 0, 0, a != 0, b != 0);
  EXPECT_EQ(result, a == b) << to_string(kind) << " a=" << a << " b=" << b;
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, XnorTruthTable,
    ::testing::Combine(::testing::Values(LogicFamilyKind::kMagic,
                                         LogicFamilyKind::kImply),
                       ::testing::Values(0, 1), ::testing::Values(0, 1)));

TEST(LogicFamily, GateReusableAcrossOperations) {
  // The same physical gate must compute correctly when reused many times
  // with varying operands (crossbars are reused over passes).
  CrossbarConfig cfg;
  cfg.rows = 2;
  cfg.cols = 8;
  CrossbarArray xbar(cfg);
  const auto family = make_magic_family();
  for (int round = 0; round < 8; ++round) {
    for (int a = 0; a < 2; ++a) {
      for (int b = 0; b < 2; ++b) {
        EXPECT_EQ(xbar.execute_xnor_on_gate(*family, round % 4, a != 0, b != 0),
                  a == b);
      }
    }
  }
}

TEST(LogicFamily, ImplyIsLongerThanMagic) {
  const auto magic = make_magic_family();
  const auto imply = make_imply_family();
  EXPECT_EQ(magic->xnor_pulse_count(), 8);
  EXPECT_EQ(imply->xnor_pulse_count(), 11);
  EXPECT_LT(magic->xnor_pulse_count(), imply->xnor_pulse_count());
}

TEST(LogicFamily, StuckResultCellForcesOutput) {
  CrossbarConfig cfg;
  cfg.rows = 1;
  cfg.cols = kCellsPerGate;
  const auto family = make_magic_family();
  for (const bool stuck_high : {false, true}) {
    CrossbarArray xbar(cfg);
    xbar.inject_device_fault(0, static_cast<int>(family->result_cell()),
                             stuck_high ? DeviceFaultKind::kStuckAt1
                                        : DeviceFaultKind::kStuckAt0);
    for (int a = 0; a < 2; ++a) {
      for (int b = 0; b < 2; ++b) {
        EXPECT_EQ(xbar.execute_xnor(*family, 0, 0, a != 0, b != 0), stuck_high);
      }
    }
  }
}

TEST(LogicFamily, FlippedOperandInvertsXnor) {
  CrossbarConfig cfg;
  cfg.rows = 1;
  cfg.cols = kCellsPerGate;
  CrossbarArray xbar(cfg);
  const auto family = make_imply_family();
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      // Writing the complement of A models a transient state flip.
      EXPECT_EQ(xbar.execute_xnor(*family, 0, 0, a == 0, b != 0), a != b);
    }
  }
}

TEST(Calibration, ImplyCostsMoreTimeThanMagic) {
  CrossbarConfig cfg;
  const XnorCost magic = calibrate_xnor_cost(cfg, *make_magic_family());
  const XnorCost imply = calibrate_xnor_cost(cfg, *make_imply_family());
  EXPECT_GT(magic.avg_energy_joules, 0.0);
  EXPECT_GT(imply.latency_seconds, magic.latency_seconds);
}

TEST(Mapper, ComputesCapacityAndPasses) {
  CrossbarMapper mapper({40, 10}, 1, LogicFamilyKind::kMagic);
  EXPECT_EQ(mapper.gates_per_crossbar(), 80);
  EXPECT_EQ(mapper.virtual_slots(), 400);

  const MappingResult r = mapper.map_ops(1000);
  EXPECT_EQ(r.parallel_ops, 80);
  EXPECT_EQ(r.passes, 13);  // ceil(1000 / 80)
  EXPECT_GT(r.latency_seconds, 0.0);
  EXPECT_GT(r.energy_joules, 0.0);
}

TEST(Mapper, MultipleCrossbarsReducePasses) {
  CrossbarMapper one({32, 32}, 1, LogicFamilyKind::kMagic);
  CrossbarMapper four({32, 32}, 4, LogicFamilyKind::kMagic);
  const auto r1 = one.map_ops(10000);
  const auto r4 = four.map_ops(10000);
  EXPECT_GT(r1.passes, r4.passes);
  EXPECT_NEAR(static_cast<double>(r1.passes) / static_cast<double>(r4.passes),
              4.0, 1.0);
}

TEST(Mapper, SlotAssignmentWraps) {
  CrossbarMapper mapper({4, 5}, 1, LogicFamilyKind::kMagic);
  EXPECT_EQ(mapper.slot_of_op(0), 0);
  EXPECT_EQ(mapper.slot_of_op(19), 19);
  EXPECT_EQ(mapper.slot_of_op(20), 0);
  EXPECT_EQ(mapper.pass_of_op(19), 0);
  EXPECT_EQ(mapper.pass_of_op(20), 1);
}

TEST(Mapper, RejectsTooNarrowCrossbar) {
  CrossbarMapper mapper({4, 2}, 1, LogicFamilyKind::kMagic);
  EXPECT_THROW(mapper.map_ops(10), std::invalid_argument);
}

}  // namespace
}  // namespace flim::lim
